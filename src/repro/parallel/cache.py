"""Content-keyed memoisation of spectrum evaluations.

Spectrum sweeps, accuracy panels and spread tables all reduce to the
same primitive: run the emulator and the model on one ``(cluster,
program, distribution)`` triple and keep the ``(actual, predicted)``
pair.  Different experiments — and repeated CLI/benchmark invocations —
revisit the same triples constantly (every leg of the spectrum shares
its endpoints with the next), so :class:`SweepCache` memoises the pairs,
in memory and optionally on disk.

Keys are *content* hashes, not object identities or names: two
``ClusterSpec`` objects describing the same hardware hash identically,
and any change to a node's memory, a program's row count, or a
perturbation flag changes the key.  Hashing uses SHA-256 over a
canonical recursive encoding (dataclasses by field, numpy arrays by
shape/dtype/bytes), so keys are stable across processes and sessions —
``PYTHONHASHSEED`` never enters.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import threading
import weakref
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.util.lru import LRUCache

__all__ = ["SweepCache", "RunCache", "content_key", "default_run_cache"]

#: Miss marker for store lookups (a stored pair is never ``None``, but
#: detecting absence by sentinel keeps lookup semantics uniform with
#: :class:`repro.util.lru.LRUCache`).
_MISS = object()


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-encodable structure that captures content."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; float('nan') etc. included.
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.name]
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return [
            "ndarray",
            list(data.shape),
            str(data.dtype),
            hashlib.sha256(data.tobytes()).hexdigest(),
        ]
    if isinstance(obj, np.generic):
        return _canonical(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dc",
            type(obj).__name__,
            [
                [f.name, _canonical(getattr(obj, f.name))]
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(v) for v in obj]]
    if isinstance(obj, dict):
        return [
            "map",
            sorted(
                ([_canonical(k), _canonical(v)] for k, v in obj.items()),
                key=json.dumps,
            ),
        ]
    # Last resort: a stable repr (covers simple value objects).
    return ["repr", type(obj).__name__, repr(obj)]


@contextlib.contextmanager
def _file_lock(path: Path) -> Iterator[None]:
    """Exclusive inter-process lock covering updates of ``path``.

    ``os.replace`` makes each write atomic, but the read-merge-replace
    in :meth:`SweepCache.save` is not: two processes that both read
    before either replaces silently drop one side's entries.  An
    ``flock`` over the whole critical section serialises the merge.
    The lock is taken on the *parent directory's* fd: the data file's
    inode changes on every ``os.replace`` (locking it races), and a
    sidecar lock file would either litter the directory or race its
    own cleanup.  Platforms without ``fcntl`` fall back to the
    unserialised (but still atomic-per-write) behaviour.
    """
    try:
        import fcntl
    except ImportError:  # non-POSIX: keep the previous best effort
        yield
        return
    fd = os.open(str(path.parent), os.O_RDONLY)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)


def _digest(tokens: Any) -> str:
    """SHA-256 hex digest of already-canonicalised tokens."""
    payload = json.dumps(tokens, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(payload.encode()).hexdigest()


def content_key(*objects: Any) -> str:
    """SHA-256 hex digest of the objects' canonical content encoding."""
    return _digest([_canonical(obj) for obj in objects])


# Identity-memoised partial digests for the run-cache hot path: a batch
# (or a hit-heavy loop) re-keys the same cluster/program objects over
# and over, and canonicalising a full ProgramStructure dominates the
# cost of a cache hit.  Keys are object identities guarded by weakrefs
# (a recycled id() after garbage collection must never alias), and the
# memo is tiny — a handful of live configurations at a time.
_KEY_BASE_MEMO: Dict[tuple, Tuple[tuple, str]] = {}
_KEY_BASE_MEMO_MAX = 128


def _weak_guards(objects: tuple) -> Optional[tuple]:
    """Weak references proving the memoised identities are still the
    same objects; ``None`` when any object is not weakref-able."""
    refs = []
    for obj in objects:
        if obj is None:
            refs.append(None)
            continue
        try:
            refs.append(weakref.ref(obj))
        except TypeError:
            return None
    return tuple(refs)


def _guards_hold(refs: tuple, objects: tuple) -> bool:
    return all(
        (ref is None and obj is None)
        or (ref is not None and ref() is obj)
        for ref, obj in zip(refs, objects)
    )


class SweepCache:
    """Memoised ``(cluster, program, distribution) -> (actual, predicted)``.

    Parameters
    ----------
    path:
        Optional JSON file for on-disk persistence.  If it exists it is
        loaded eagerly; :meth:`save` writes the merged contents back
        (what is on disk now — including entries another process wrote
        since load — merged with this cache's entries) atomically, so
        repeated benchmark/CLI invocations skip redundant emulation and
        a fleet of processes can share one history file.
    max_entries:
        Optional bound on the in-memory store.  When set, the cache
        keeps only the ``max_entries`` most recently used pairs
        (least-recently-used eviction), so unattended long-running
        sweeps hold memory at a fixed ceiling; ``None`` (default) keeps
        everything, as before.

    Hit/miss accounting has one source of truth: the backing
    :class:`~repro.util.lru.LRUCache` counters when the store is
    bounded, the cache's own counters otherwise — ``hits``/``misses``
    read whichever applies, so telemetry and ``repro stats`` can never
    report two disagreeing figures for the same cache.

    All operations (and the read-merge-write in :meth:`save`) run under
    an ``RLock``, so one cache may be shared between the serving
    coordinator's event loop and its executor thread.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._store: Union[Dict[str, Tuple[float, float]], LRUCache]
        if max_entries is None:
            self._store = {}
        else:
            self._store = LRUCache(max_entries, threadsafe=True)
        self._hits = 0
        self._misses = 0
        if self.path is not None and self.path.exists():
            for k, pair in self._read_disk().items():
                self._put(k, pair)

    def _read_disk(self) -> Dict[str, Tuple[float, float]]:
        """Parse the on-disk file (empty mapping when unreadable — a
        half-written file from a pre-atomic-write version must not brick
        every later run)."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        return {k: (float(a), float(p)) for k, (a, p) in raw.items()}

    def _put(self, key: str, pair: Tuple[float, float]) -> None:
        if isinstance(self._store, LRUCache):
            self._store.put(key, pair)
        else:
            self._store[key] = pair

    @property
    def hits(self) -> int:
        """Lookup hits — delegated to the LRU when the store is bounded."""
        if isinstance(self._store, LRUCache):
            return self._store.hits
        return self._hits

    @property
    def misses(self) -> int:
        """Lookup misses — delegated to the LRU when the store is bounded."""
        if isinstance(self._store, LRUCache):
            return self._store.misses
        return self._misses

    @property
    def stats(self) -> dict:
        """Counter snapshot (one consistent source of truth)."""
        return {
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def key(cluster, program, distribution, perturbation=None) -> str:
        return content_key(
            cluster, program, tuple(distribution.counts), perturbation
        )

    def lookup(
        self, cluster, program, distribution, perturbation=None
    ) -> Optional[Tuple[float, float]]:
        """Return the cached ``(actual, predicted)`` pair, or ``None``.

        A bounded store counts the hit/miss itself (that *is* the
        authoritative counter, see the class docstring); the unbounded
        dict path counts here.
        """
        key = self.key(cluster, program, distribution, perturbation)
        with self._lock:
            pair = self._store.get(key, _MISS)
            if isinstance(self._store, LRUCache):
                # LRUCache.get already counted; normalise the sentinel.
                return None if pair is _MISS else pair
            if pair is _MISS:
                self._misses += 1
                return None
            self._hits += 1
            return pair

    def store(
        self,
        cluster,
        program,
        distribution,
        actual: float,
        predicted: float,
        perturbation=None,
    ) -> None:
        with self._lock:
            self._put(
                self.key(cluster, program, distribution, perturbation),
                (float(actual), float(predicted)),
            )

    def save(self) -> None:
        """Persist to ``path`` (no-op for purely in-memory caches).

        The write is a read-merge-replace: entries another process wrote
        to the file since this cache loaded it are re-read and kept
        (this cache's pairs win on key collisions — the pairs are
        deterministic, so colliding values agree anyway).  The whole
        read-merge-replace runs under an inter-process file lock and the
        merged payload lands via a same-directory temp file +
        :func:`os.replace`, so a crash mid-write can never leave a
        truncated file and two processes saving interleaved lose
        nothing.
        """
        if self.path is None:
            return
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with _file_lock(self.path):
                merged: Dict[str, Tuple[float, float]] = {}
                if self.path.exists():
                    merged.update(self._read_disk())
                merged.update(
                    (k, (float(v[0]), float(v[1])))
                    for k, v in self._store.items()
                )
                payload = {k: list(v) for k, v in sorted(merged.items())}
                fd, tmp = tempfile.mkstemp(
                    dir=self.path.parent, prefix=self.path.name,
                    suffix=".tmp",
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        fh.write(
                            json.dumps(payload, indent=0, sort_keys=True)
                            + "\n"
                        )
                    os.replace(tmp, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise


class RunCache:
    """Bounded content-keyed memoisation of whole emulator ``RunResult``s.

    Where :class:`SweepCache` keeps only the scalar ``(actual,
    predicted)`` pair of a spectrum point, this cache keeps the full
    :class:`~repro.sim.executor.RunResult` (total, per-node times,
    iteration ends), so any layer that re-emulates an identical
    configuration — grid experiments sharing spectrum endpoints across
    panels, the adaptive runtime re-running its static baseline, repeat
    benchmark rounds — gets the stored run back instead.

    Keys follow the same content-hash discipline as :func:`content_key`
    everywhere else, and the store is the same bounded LRU as the
    prediction table cache (:class:`repro.util.lru.LRUCache`), so long
    sweeps hold memory at a fixed ceiling.

    The stored payload is *frozen* — its mutable list fields are
    converted to tuples on :meth:`put` and fresh lists are rebuilt on
    :meth:`get` — so a caller mutating a returned result can never
    poison the cache, without the deep defensive copy the hit path
    used to pay.

    ``path`` adds an optional on-disk tier with :class:`SweepCache`
    semantics: loaded eagerly, persisted by :meth:`save` as an atomic
    read-merge-replace under the parent-directory file lock, so a fleet
    of processes shares one emulation history.
    """

    DEFAULT_MAX_ENTRIES = 512

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        path: Optional[Union[str, Path]] = None,
    ) -> None:
        self._store = LRUCache(max_entries)
        self._lock = threading.RLock()
        self.path = Path(path) if path is not None else None
        self.loaded_from_disk = 0
        if self.path is not None and self.path.exists():
            for k, result in self._read_disk().items():
                self._store.put(k, result)
                self.loaded_from_disk += 1

    @staticmethod
    def key_base(
        cluster,
        program,
        iterations: int,
        perturbation,
        *,
        instrumented: bool = False,
        fast_forward: bool = True,
        dynamics=None,
        io_mode: str = "auto",
        iteration_offset: int = 0,
    ) -> str:
        """Partial content hash over everything but the distribution.

        Memoised on object identity (weakref-guarded), because batched
        emulation and hit-heavy loops re-key the same cluster/program
        objects constantly and canonicalising them dominates a hit.

        ``dynamics``/``io_mode``/``iteration_offset`` contribute to the
        digest only when they differ from their static defaults, so
        every key minted before those keywords existed is reproduced
        byte-for-byte.
        """
        objects = (cluster, program, perturbation, dynamics)
        memo_key = (
            id(cluster), id(program), id(perturbation), id(dynamics),
            int(iterations), bool(instrumented), bool(fast_forward),
            str(io_mode), int(iteration_offset),
        )
        entry = _KEY_BASE_MEMO.get(memo_key)
        if entry is not None:
            refs, base = entry
            if _guards_hold(refs, objects):
                return base
        payload = [
            "run",
            _canonical(cluster),
            _canonical(program),
            int(iterations),
            _canonical(perturbation),
            bool(instrumented),
            bool(fast_forward),
        ]
        if dynamics is not None:
            payload.extend(["dynamics", _canonical(dynamics)])
        if io_mode != "auto":
            payload.extend(["io_mode", str(io_mode)])
        if iteration_offset:
            payload.extend(["offset", int(iteration_offset)])
        base = _digest(payload)
        refs = _weak_guards(objects)
        if refs is not None:
            if len(_KEY_BASE_MEMO) >= _KEY_BASE_MEMO_MAX:
                _KEY_BASE_MEMO.clear()
            _KEY_BASE_MEMO[memo_key] = (refs, base)
        return base

    @staticmethod
    def key_from_base(base: str, counts) -> str:
        """Full run key from a :meth:`key_base` digest plus the
        candidate's GEN_BLOCK row counts."""
        payload = base + "|" + ",".join(str(int(c)) for c in counts)
        return hashlib.sha256(payload.encode()).hexdigest()

    @staticmethod
    def key(
        cluster,
        program,
        distribution,
        iterations: int,
        perturbation,
        *,
        instrumented: bool = False,
        fast_forward: bool = True,
        dynamics=None,
        io_mode: str = "auto",
        iteration_offset: int = 0,
    ) -> str:
        """Content hash of everything an emulated run depends on.

        ``fast_forward`` is part of the key because the extrapolated
        tail matches full simulation only to ~1e-9 relative — a caller
        that explicitly asked for full simulation must never receive a
        fast-forwarded result (or vice versa).
        """
        return RunCache.key_from_base(
            RunCache.key_base(
                cluster,
                program,
                iterations,
                perturbation,
                instrumented=instrumented,
                fast_forward=fast_forward,
                dynamics=dynamics,
                io_mode=io_mode,
                iteration_offset=iteration_offset,
            ),
            distribution.counts,
        )

    # -- frozen payloads ------------------------------------------------------

    @staticmethod
    def _freeze(result):
        """Immutable-field copy safe to share from the cache."""
        if not hasattr(result, "per_node_seconds"):
            return result
        return dataclasses.replace(
            result,
            per_node_seconds=tuple(result.per_node_seconds),
            iteration_ends=tuple(
                tuple(ends) for ends in result.iteration_ends
            ),
        )

    @staticmethod
    def _thaw(result):
        """Fresh mutable-field copy handed to the caller."""
        if not hasattr(result, "per_node_seconds"):
            return result
        return dataclasses.replace(
            result,
            per_node_seconds=list(result.per_node_seconds),
            iteration_ends=[list(ends) for ends in result.iteration_ends],
        )

    def get(self, key: str):
        """A private mutable copy of the cached
        :class:`~repro.sim.executor.RunResult`, or ``None``."""
        hit = self._store.get(key)
        if hit is None:
            return None
        return self._thaw(hit)

    def put(self, key: str, result) -> None:
        self._store.put(key, self._freeze(result))

    def put_many(self, pairs: Iterable[Tuple[str, Any]]) -> None:
        """Store a whole batch of ``(key, result)`` pairs (one batched
        emulation pass lands its population in one call)."""
        for key, result in pairs:
            self.put(key, result)

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hits(self) -> int:
        return self._store.hits

    @property
    def misses(self) -> int:
        return self._store.misses

    @property
    def stats(self) -> dict:
        stats = self._store.stats
        stats["loaded_from_disk"] = self.loaded_from_disk
        return stats

    # -- on-disk tier ---------------------------------------------------------

    @staticmethod
    def _serialize(result) -> list:
        return [
            result.total_seconds,
            list(result.per_node_seconds),
            [list(ends) for ends in result.iteration_ends],
            [int(c) for c in result.distribution.counts],
            int(result.iterations),
            bool(result.fast_forwarded),
        ]

    @staticmethod
    def _deserialize(payload):
        from repro.distribution.genblock import GenBlock
        from repro.sim.executor import RunResult

        total, per_node, ends, counts, iterations, fast = payload
        return RunResult(
            total_seconds=float(total),
            per_node_seconds=tuple(float(v) for v in per_node),
            iteration_ends=tuple(
                tuple(float(v) for v in row) for row in ends
            ),
            distribution=GenBlock(tuple(int(c) for c in counts)),
            iterations=int(iterations),
            fast_forwarded=bool(fast),
        )

    def _read_disk(self) -> Dict[str, Any]:
        """Parse the on-disk file into frozen results (empty mapping
        when unreadable, matching :meth:`SweepCache._read_disk`)."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            return {k: self._deserialize(v) for k, v in raw.items()}
        except (OSError, ValueError, TypeError, KeyError):
            return {}

    def save(self) -> None:
        """Persist to ``path`` (no-op for purely in-memory caches);
        read-merge-replace under the parent-directory lock, exactly
        like :meth:`SweepCache.save`."""
        if self.path is None:
            return
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with _file_lock(self.path):
                merged: Dict[str, Any] = {}
                if self.path.exists():
                    merged.update(self._read_disk())
                merged.update(self._store.items())
                payload = {
                    k: self._serialize(v) for k, v in sorted(merged.items())
                }
                fd, tmp = tempfile.mkstemp(
                    dir=self.path.parent, prefix=self.path.name,
                    suffix=".tmp",
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as fh:
                        fh.write(
                            json.dumps(payload, indent=0, sort_keys=True)
                            + "\n"
                        )
                    os.replace(tmp, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise


#: Process-wide shared run cache used by :func:`repro.sim.executor.emulate`
#: when no explicit cache is passed.  Worker processes of a parallel
#: sweep each hold their own (caches do not cross ``fork``/``spawn``
#: boundaries usefully), which is still a win: a worker revisits the
#: same configurations across the tasks it is handed.
_DEFAULT_RUN_CACHE: Optional[RunCache] = None


def default_run_cache() -> RunCache:
    """The lazily created process-wide :class:`RunCache`."""
    global _DEFAULT_RUN_CACHE
    if _DEFAULT_RUN_CACHE is None:
        _DEFAULT_RUN_CACHE = RunCache()
    return _DEFAULT_RUN_CACHE
