"""Golden equivalence: batched candidate scoring vs sequential calls.

``MhetaModel.predict_seconds_batch`` evaluates a whole population of
GEN_BLOCK candidates in one vectorized pass — clocks become ``(B, P)``,
section matrices ``(B, P, P)``.  No reduction ever crosses the candidate
axis, so every candidate's figure must agree with a sequential
``predict_seconds`` call on the same model to within ``REL_TOL = 1e-12``
relative (in practice the lean numpy path is bit-identical) — on every
seed app, every seed cluster, the prefetch variant, iteration-profile
programs (loop fallback), the scalar kernel (loop fallback), and
hypothesis-randomized batches.  The sharded fan-out must preserve the
same figures across process boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import (
    ConjugateGradientApp,
    JacobiApp,
    LanczosApp,
    MultigridApp,
    RnaPipelineApp,
)
from repro.cluster import configs
from repro.core.model import MhetaModel
from repro.distribution import GenBlock, block, largest_remainder_round, spectrum
from repro.exceptions import ModelError
from repro.instrument.collect import collect_inputs

REL_TOL = 1e-12
SCALE = 0.05

APPS = {
    "jacobi": JacobiApp,
    "cg": ConjugateGradientApp,
    "rna": RnaPipelineApp,
    "lanczos": LanczosApp,
    "multigrid": MultigridApp,
}
CLUSTERS = {
    "DC": configs.config_dc,
    "IO": configs.config_io,
    "HY1": configs.config_hy1,
    "HY2": configs.config_hy2,
}


def _model(cluster, program, kernel="numpy", **kwargs):
    inputs = collect_inputs(cluster, program, block(cluster, program.n_rows))
    return MhetaModel(program, cluster, inputs, kernel=kernel, **kwargs)


def _candidates(cluster, program):
    """Block plus the full spectrum walk — the shapes searches batch."""
    cands = [block(cluster, program.n_rows)]
    cands += [p.distribution
              for p in spectrum(cluster, program, steps_per_leg=3)]
    return cands


def _assert_batch_matches_sequential(model, cands):
    batch = model.predict_seconds_batch(cands)
    assert isinstance(batch, np.ndarray)
    assert batch.shape == (len(cands),)
    for dist, got in zip(cands, batch):
        want = model.predict_seconds(dist)
        assert want > 0 and got > 0
        assert abs(got - want) <= REL_TOL * max(abs(got), abs(want)), (
            f"batch diverges from sequential for {dist.counts}: "
            f"sequential={want!r} batch={got!r} "
            f"rel={abs(got - want) / max(abs(got), abs(want)):.3e}"
        )


# -- golden sweep: every seed app on every seed cluster ----------------------


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
@pytest.mark.parametrize("cluster_name", sorted(CLUSTERS))
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_batch_equivalence(app_name, cluster_name, kernel):
    cluster = CLUSTERS[cluster_name]()
    program = APPS[app_name].paper(SCALE).structure
    model = _model(cluster, program, kernel=kernel)
    _assert_batch_matches_sequential(model, _candidates(cluster, program))


@pytest.mark.parametrize("cluster_name", ["IO", "HY1"])
@pytest.mark.parametrize("app_name", ["jacobi", "rna"])
def test_batch_equivalence_prefetch(app_name, cluster_name):
    """The prefetch I/O model (Equation 2) through the batched kernel."""
    cluster = CLUSTERS[cluster_name]()
    program = APPS[app_name].paper(SCALE).prefetching()
    model = _model(cluster, program)
    _assert_batch_matches_sequential(model, _candidates(cluster, program))


@pytest.mark.parametrize("cluster_name", ["DC", "HY2"])
def test_batch_equivalence_iteration_profile(cluster_name):
    """Iteration-profile programs take the loop fallback inside
    ``predict_seconds_batch`` — same contract, same tolerance."""
    cluster = CLUSTERS[cluster_name]()
    base = JacobiApp.paper(SCALE).structure
    profile = 1.0 + 0.5 * np.sin(np.arange(base.iterations))
    program = base.with_iteration_profile(profile)
    model = _model(cluster, program)
    _assert_batch_matches_sequential(model, _candidates(cluster, program))


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
def test_batch_matches_scalar_kernel(kernel):
    """The batch must also satisfy the cross-kernel golden contract:
    within 1e-12 relative of the scalar reference."""
    cluster = configs.config_hy1()
    program = JacobiApp.paper(SCALE).structure
    scalar = _model(cluster, program, kernel="scalar", table_cache=0)
    vector = _model(cluster, program, kernel=kernel)
    cands = _candidates(cluster, program)
    batch = vector.predict_seconds_batch(cands)
    for dist, got in zip(cands, batch):
        want = scalar.predict_seconds(dist)
        assert abs(got - want) <= REL_TOL * max(abs(got), abs(want))


def test_plan_batch_matches_numpy_batch():
    """``kernel="plan"`` and the numpy batch agree on the whole
    population at the golden tolerance (one vectorized pass each)."""
    cluster = configs.config_hy1()
    program = MultigridApp.paper(SCALE).structure
    vector = _model(cluster, program)
    plan = _model(cluster, program, kernel="plan")
    cands = _candidates(cluster, program)
    a = vector.predict_seconds_batch(cands)
    b = plan.predict_seconds_batch(cands)
    rel = np.abs(a - b) / np.maximum(np.abs(a), np.abs(b))
    assert rel.max() <= REL_TOL


def test_scalar_kernel_batch_is_loop_fallback():
    """``kernel='scalar'`` batches via a loop of scalar predictions —
    exactly equal to the sequential figures."""
    cluster = configs.config_io()
    program = LanczosApp.paper(SCALE).structure
    model = _model(cluster, program, kernel="scalar", table_cache=0)
    cands = _candidates(cluster, program)[:4]
    batch = model.predict_seconds_batch(cands)
    assert list(batch) == [model.predict_seconds(d) for d in cands]


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
def test_empty_batch(kernel):
    cluster = configs.config_dc()
    program = JacobiApp.paper(SCALE).structure
    model = _model(cluster, program, kernel=kernel)
    out = model.predict_seconds_batch([])
    assert isinstance(out, np.ndarray) and out.shape == (0,)


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
def test_batch_validates_every_candidate(kernel):
    cluster = configs.config_dc()
    program = JacobiApp.paper(SCALE).structure
    model = _model(cluster, program, kernel=kernel)
    good = block(cluster, program.n_rows)
    bad = GenBlock((program.n_rows,))  # wrong node count
    with pytest.raises(ModelError, match="does not match the model"):
        model.predict_seconds_batch([good, bad])
    short = GenBlock(tuple(good.counts[:-1]) + (good.counts[-1] - 1,))
    with pytest.raises(ModelError, match="does not cover the program"):
        model.predict_seconds_batch([good, short])


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
def test_batch_iterations_override(kernel):
    cluster = configs.config_hy2()
    program = JacobiApp.paper(SCALE).structure
    model = _model(cluster, program, kernel=kernel)
    cands = _candidates(cluster, program)[:3]
    batch = model.predict_seconds_batch(cands, iterations=7)
    for dist, got in zip(cands, batch):
        want = model.predict_seconds(dist, iterations=7)
        assert abs(got - want) <= REL_TOL * max(abs(got), abs(want))


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
def test_duplicate_candidates_in_one_batch(kernel):
    """Duplicates inside one batch score identically (shared tables)."""
    cluster = configs.config_hy1()
    program = ConjugateGradientApp.paper(SCALE).structure
    model = _model(cluster, program, kernel=kernel)
    d = block(cluster, program.n_rows)
    batch = model.predict_seconds_batch([d, d, d])
    assert batch[0] == batch[1] == batch[2]


def test_batch_without_table_cache():
    """``table_cache=0`` builds transient tables; results unchanged."""
    cluster = configs.config_io()
    program = JacobiApp.paper(SCALE).structure
    cached = _model(cluster, program)
    uncached = _model(cluster, program, table_cache=0)
    cands = _candidates(cluster, program)
    a = cached.predict_seconds_batch(cands)
    b = uncached.predict_seconds_batch(cands)
    assert list(a) == list(b)


# -- randomized batches -------------------------------------------------------

_JACOBI_FIXTURES = {}


def _jacobi_model(cluster_name):
    if cluster_name not in _JACOBI_FIXTURES:
        cluster = CLUSTERS[cluster_name]()
        program = JacobiApp.paper(SCALE).structure
        _JACOBI_FIXTURES[cluster_name] = (program, _model(cluster, program))
    return _JACOBI_FIXTURES[cluster_name]


@settings(deadline=None, max_examples=25,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    batch=st.lists(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=8, max_size=8,
        ),
        min_size=1, max_size=12,
    ),
    cluster_name=st.sampled_from(sorted(CLUSTERS)),
)
def test_random_batches_agree(batch, cluster_name):
    """Arbitrary GEN_BLOCK populations — skewed shapes, duplicates,
    any batch size — agree with sequential scoring."""
    program, model = _jacobi_model(cluster_name)
    cands = [
        GenBlock(largest_remainder_round(
            np.array(weights), program.n_rows, minimum=1
        ))
        for weights in batch
    ]
    _assert_batch_matches_sequential(model, cands)


# -- sharded fan-out ----------------------------------------------------------


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
def test_sharded_prediction_matches_serial(kernel):
    """``predict_seconds_sharded`` is bit-identical across job counts
    (plan models recompile their plan in each worker process)."""
    from repro.parallel import predict_seconds_sharded

    cluster = configs.config_hy1()
    program = JacobiApp.paper(SCALE).structure
    model = _model(cluster, program, kernel=kernel)
    cands = _candidates(cluster, program)
    serial = predict_seconds_sharded(model, cands, jobs=1)
    assert serial == [float(v) for v in model.predict_seconds_batch(cands)]
    sharded = predict_seconds_sharded(model, cands, jobs=2)
    assert sharded == serial
