"""Public-API contract tests for the PR-5 consolidation.

Three guarantees:

* the ``repro`` namespace is exactly the snapshot below (additions and
  removals must be deliberate);
* the deprecated aliases still return the same numbers as the
  consolidated ``predict`` and warn exactly once per process;
* the consolidated paths match the legacy paths to 1e-12 on a seed
  application x cluster grid, and the telemetry phase breakdown sums
  to the predicted total.
"""

import inspect
import warnings

import pytest

import repro
from repro import (
    GeneralizedBinarySearch,
    GeneticSearch,
    RandomSearch,
    Recorder,
    SimulatedAnnealingSearch,
    SpectrumSweep,
    reset_warnings,
)
from repro.apps import ConjugateGradientApp, JacobiApp
from repro.cluster import configs
from repro.distribution import block, spectrum
from repro.experiments import build_model

SCALE = 0.05

EXPECTED_ALL = {
    "__version__",
    # exceptions
    "ReproError", "ConfigurationError", "DistributionError",
    "ProgramStructureError", "SimulationError", "InstrumentationError",
    "ModelError", "SearchError",
    # cluster
    "NodeSpec", "NetworkSpec", "ClusterSpec", "baseline_cluster",
    "config_dc", "config_io", "config_hy1", "config_hy2",
    "table1_configs", "architecture_suite", "prefetch_suite",
    # program
    "Access", "Variable", "Stage", "CommPattern", "CommSpec",
    "ParallelSection", "ProgramStructure", "ProgramBuilder",
    # distribution
    "GenBlock", "block", "balanced", "in_core", "in_core_balanced",
    "spectrum", "SpectrumPoint",
    # placement
    "MemoryPlan", "VariablePlacement", "plan_memory",
    # sim
    "ClusterEmulator", "PerturbationConfig", "RunResult", "emulate",
    # instrument
    "MhetaInputs", "Microbenchmarks", "collect_inputs",
    "run_microbenchmarks",
    # core
    "MhetaModel", "PredictionReport",
    # obs
    "Recorder", "NullRecorder", "NULL_RECORDER", "as_recorder",
    "reset_warnings",
    # apps
    "Application", "AppConfig", "JacobiApp", "ConjugateGradientApp",
    "RnaPipelineApp", "LanczosApp", "MultigridApp",
    "paper_applications", "application_by_name",
    # search
    "SearchResult", "GeneralizedBinarySearch", "GeneticSearch",
    "SimulatedAnnealingSearch", "RandomSearch", "SpectrumSweep",
    # experiments
    "build_model", "run_spectrum",
    # runtime
    "AdaptiveRuntime", "AdaptiveReport", "RedistributionModel",
}

SEARCHERS = (
    GeneralizedBinarySearch,
    GeneticSearch,
    SimulatedAnnealingSearch,
    RandomSearch,
    SpectrumSweep,
)


@pytest.fixture(scope="module")
def seed_setup():
    cluster = configs.config_hy1()
    program = JacobiApp.paper(SCALE).structure
    model = build_model(cluster, program)
    return cluster, program, model


class TestNamespaceSnapshot:
    def test_all_is_exactly_the_snapshot(self):
        assert set(repro.__all__) == EXPECTED_ALL

    def test_everything_in_all_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestDeprecatedAliases:
    def test_aliases_match_consolidated_paths(self, seed_setup):
        cluster, program, model = seed_setup
        cands = [
            p.distribution for p in spectrum(cluster, program, 1)
        ]
        d = cands[0]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert model.predict_seconds(d) == model.predict(d)
            assert list(model.predict_seconds_batch(cands)) == list(
                model.predict(cands, batch=True)
            )
            assert model.predict_many(cands) == model.predict(
                cands, batch="serial"
            )

    def test_each_alias_warns_exactly_once(self, seed_setup):
        cluster, program, model = seed_setup
        d = block(cluster, program.n_rows)
        reset_warnings()
        for call in (
            lambda: model.predict_seconds(d),
            lambda: model.predict_many([d]),
            lambda: model.predict_seconds_batch([d]),
        ):
            with pytest.warns(DeprecationWarning):
                call()
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                call()  # second use is silent


class TestConsolidatedPredict:
    def test_serial_batch_and_vector_batch_agree(self, seed_setup):
        cluster, program, model = seed_setup
        cands = [p.distribution for p in spectrum(cluster, program, 2)]
        singles = [model.predict(d) for d in cands]
        serial = model.predict(cands, batch="serial")
        vector = model.predict(cands, batch=True)
        assert serial == singles  # bit-identical path
        for a, b in zip(singles, vector):
            assert b == pytest.approx(a, rel=1e-12)

    def test_report_total_matches_scalar(self, seed_setup):
        cluster, program, model = seed_setup
        d = block(cluster, program.n_rows)
        report = model.predict(d, report=True)
        assert report.total_seconds == pytest.approx(
            model.predict(d), rel=1e-12
        )

    def test_batch_report_combination_rejected(self, seed_setup):
        cluster, program, model = seed_setup
        d = block(cluster, program.n_rows)
        with pytest.raises(repro.ModelError):
            model.predict([d], batch=True, report=True)

    @pytest.mark.parametrize("config_name", ["HY1", "DC"])
    @pytest.mark.parametrize("app", [JacobiApp, ConjugateGradientApp])
    def test_grid_old_equals_new(self, app, config_name):
        cluster = configs.table1_configs()[config_name]
        program = app.paper(SCALE).structure
        model = build_model(cluster, program)
        cands = [p.distribution for p in spectrum(cluster, program, 1)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for d in cands:
                assert model.predict(d) == pytest.approx(
                    model.predict_seconds(d), rel=1e-12
                )


class TestTelemetryContract:
    def test_phase_breakdown_sums_to_total(self, seed_setup):
        cluster, program, model = seed_setup
        rec = Recorder()
        report = model.predict(
            block(cluster, program.n_rows), report=True, telemetry=rec
        )
        keys = ("comp", "io_sync", "io_prefetch", "comm_overhead", "blocked")
        top = sum(rec.gauges[f"model/phase/{k}"] for k in keys)
        assert top == pytest.approx(report.total_seconds, abs=1e-9)
        n_nodes = len(cluster.nodes)
        for n in range(n_nodes):
            parts = sum(
                rec.gauges[f"model/phase/node{n}/{k}"] for k in keys
            )
            assert parts == pytest.approx(
                rec.gauges[f"model/phase/node{n}/total"], abs=1e-9
            )

    def test_prediction_and_cache_counters(self, seed_setup):
        cluster, program, model = seed_setup
        rec = Recorder()
        d = block(cluster, program.n_rows)
        model.predict(d, telemetry=rec)
        model.predict(d, telemetry=rec)
        assert rec.counters["model/predictions"] == 2
        assert rec.gauges["model/table_cache/size"] >= 1

    def test_disabled_telemetry_changes_nothing(self, seed_setup):
        cluster, program, model = seed_setup
        d = block(cluster, program.n_rows)
        assert model.predict(d, telemetry=None) == model.predict(
            d, telemetry=Recorder(enabled=False)
        )


class TestUniformSearcherSignatures:
    def test_constructors_accept_model_cluster_batch_size(self, seed_setup):
        cluster, program, model = seed_setup
        for cls in SEARCHERS:
            searcher = cls(model, cluster, batch_size=16)
            assert searcher.cluster is cluster
            assert searcher.batch_size == 16

    def test_search_signature_uniform(self):
        for cls in SEARCHERS:
            sig = inspect.signature(cls.search)
            params = list(sig.parameters)
            assert params[:2] == ["self", "budget"]
            for kw in ("start", "batch_size", "rng", "telemetry"):
                assert kw in sig.parameters, (cls.__name__, kw)
                assert (
                    sig.parameters[kw].kind
                    is inspect.Parameter.KEYWORD_ONLY
                )

    def test_search_records_telemetry(self, seed_setup):
        cluster, program, model = seed_setup
        rec = Recorder()
        result = GeneralizedBinarySearch(model, cluster).search(
            budget=30, telemetry=rec
        )
        assert rec.counters["search/runs"] == 1
        assert rec.counters["search/evaluations"] == result.evaluations
        assert rec.gauges["search/gbs/best_seconds"] == pytest.approx(
            result.predicted_seconds
        )
        assert any(k.startswith("span/search/") for k in rec.series)
