"""Unit tests for repro.distribution (GenBlock, factories, spectrum, ops)."""

import numpy as np
import pytest

from repro.distribution import (
    GenBlock,
    balanced,
    block,
    distribution_distance,
    in_core,
    in_core_balanced,
    in_core_capacity_rows,
    in_core_flags,
    interpolate,
    largest_remainder_round,
    redistribution_bytes,
    spectrum,
)
from repro.distribution.spectrum import has_memory_pressure
from repro.exceptions import DistributionError
from tests.conftest import make_jacobi_like


class TestLargestRemainderRound:
    def test_exact_total(self):
        out = largest_remainder_round(np.array([1.0, 1.0, 1.0]), 10)
        assert out.sum() == 10

    def test_proportionality(self):
        out = largest_remainder_round(np.array([1.0, 3.0]), 100)
        assert list(out) == [25, 75]

    def test_minimum_respected(self):
        out = largest_remainder_round(np.array([0.0, 1000.0]), 10, minimum=1)
        assert out[0] == 1 and out.sum() == 10

    def test_zero_shares_fall_back_to_even(self):
        out = largest_remainder_round(np.zeros(4), 8)
        assert list(out) == [2, 2, 2, 2]

    def test_negative_shares_raise(self):
        with pytest.raises(DistributionError):
            largest_remainder_round(np.array([-1.0, 2.0]), 10)

    def test_infeasible_minimum_raises(self):
        with pytest.raises(DistributionError):
            largest_remainder_round(np.ones(5), 3, minimum=1)

    def test_deterministic_tie_break(self):
        a = largest_remainder_round(np.ones(3), 10)
        b = largest_remainder_round(np.ones(3), 10)
        assert list(a) == list(b)


class TestGenBlock:
    def test_structure(self):
        d = GenBlock([3, 0, 5])
        assert d.n_nodes == 3
        assert d.n_rows == 8
        assert d.starts == (0, 3, 3)
        assert d.rows_of(2) == (3, 8)

    def test_owner_of(self):
        d = GenBlock([2, 3])
        assert d.owner_of(0) == 0
        assert d.owner_of(1) == 0
        assert d.owner_of(2) == 1
        assert d.owner_of(4) == 1

    def test_owner_of_out_of_range(self):
        with pytest.raises(DistributionError):
            GenBlock([2, 3]).owner_of(5)

    def test_fractions_sum_to_one(self):
        d = GenBlock([1, 2, 3])
        assert d.fractions.sum() == pytest.approx(1.0)

    def test_moved(self):
        d = GenBlock([5, 5]).moved(0, 1, 2)
        assert d.counts == (3, 7)

    def test_moved_too_many_raises(self):
        with pytest.raises(DistributionError):
            GenBlock([2, 2]).moved(0, 1, 3)

    def test_negative_counts_raise(self):
        with pytest.raises(DistributionError):
            GenBlock([-1, 2])

    def test_non_integer_counts_raise(self):
        with pytest.raises(DistributionError):
            GenBlock([1.5, 2.5])

    def test_float_integers_accepted(self):
        assert GenBlock([1.0, 2.0]).counts == (1, 2)

    def test_rows_of_bad_node_raises(self):
        with pytest.raises(DistributionError):
            GenBlock([1, 1]).rows_of(2)

    def test_equality_and_hashing(self):
        assert GenBlock([1, 2]) == GenBlock([1, 2])
        assert hash(GenBlock([1, 2])) == hash(GenBlock([1, 2]))


class TestFactories:
    def test_block_even(self, base_cluster):
        d = block(base_cluster, 800)
        assert set(d.counts) == {100}

    def test_block_remainder_spread(self, base_cluster):
        d = block(base_cluster, 803)
        assert d.n_rows == 803
        assert max(d.counts) - min(d.counts) <= 1

    def test_balanced_proportional_to_power(self, hetero_cluster):
        d = balanced(hetero_cluster, 8000)
        powers = hetero_cluster.cpu_powers
        expected = powers / powers.sum() * 8000
        assert np.abs(d.as_array - expected).max() <= 1.0

    def test_every_node_gets_a_row(self, hetero_cluster):
        program = make_jacobi_like(n_rows=4096, cols=4096)
        for d in (
            block(hetero_cluster, 4096),
            balanced(hetero_cluster, 4096),
            in_core(hetero_cluster, program),
            in_core_balanced(hetero_cluster, program),
        ):
            assert min(d.counts) >= 1
            assert d.n_rows == 4096

    def test_in_core_respects_capacity_when_feasible(self, hetero_cluster):
        program = make_jacobi_like(n_rows=2048, cols=1024)
        cap = in_core_capacity_rows(hetero_cluster, program)
        if int(cap.sum()) >= program.n_rows:
            d = in_core(hetero_cluster, program)
            assert (d.as_array <= np.maximum(cap, 1)).all()

    def test_in_core_balanced_maximises_in_core_nodes(self, hetero_cluster):
        program = make_jacobi_like(n_rows=4096, cols=4096)
        d = in_core_balanced(hetero_cluster, program)
        cap = in_core_capacity_rows(hetero_cluster, program, safety=False)
        out_of_core = int((d.as_array > cap).sum())
        blk_ooc = int(
            (block(hetero_cluster, 4096).as_array > cap).sum()
        )
        assert out_of_core <= blk_ooc

    def test_capacity_with_safety_is_smaller(self, hetero_cluster):
        program = make_jacobi_like(n_rows=2048, cols=1024)
        safe = in_core_capacity_rows(hetero_cluster, program, safety=True)
        nominal = in_core_capacity_rows(hetero_cluster, program, safety=False)
        assert (safe <= nominal).all()

    def test_capacity_unbounded_without_distributed_data(self, base_cluster):
        from repro.program import ProgramBuilder

        program = (
            ProgramBuilder("p", n_rows=100)
            .replicated("r", elements=10)
            .distributed("d", cols=1)
            .section("s")
            .stage("st", reads=["r"])
            .build()
        )
        # One distributed variable with 8-byte rows: capacity is finite
        # but huge.
        cap = in_core_capacity_rows(base_cluster, program)
        assert (cap > 1_000_000).all()


class TestInterpolate:
    def test_endpoints(self):
        a, b = GenBlock([10, 0]), GenBlock([0, 10])
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b

    def test_midpoint_preserves_total(self):
        a, b = GenBlock([10, 0]), GenBlock([0, 10])
        mid = interpolate(a, b, 0.5)
        assert mid.n_rows == 10

    def test_alpha_out_of_range_raises(self):
        a = GenBlock([5, 5])
        with pytest.raises(DistributionError):
            interpolate(a, a, 1.5)

    def test_mismatched_totals_raise(self):
        with pytest.raises(DistributionError):
            interpolate(GenBlock([5, 5]), GenBlock([5, 6]), 0.5)


class TestSpectrum:
    def test_full_path_anchor_labels(self, hetero_cluster):
        program = make_jacobi_like(n_rows=4096, cols=4096)
        points = spectrum(hetero_cluster, program, steps_per_leg=2)
        labels = [p.label for p in points]
        assert labels[0] == "Blk" and labels[-1] == "Blk"
        for anchor in ("I-C", "I-C/Bal", "Bal"):
            assert anchor in labels

    def test_positions_monotone(self, hetero_cluster):
        program = make_jacobi_like(n_rows=4096, cols=4096)
        points = spectrum(hetero_cluster, program, steps_per_leg=3)
        positions = [p.position for p in points]
        assert positions == sorted(positions)
        assert positions[0] == 0.0 and positions[-1] == 1.0

    def test_homogeneous_with_pressure_collapses_to_ic_leg(self, base_cluster):
        small = base_cluster.with_nodes(
            [n.with_(memory_bytes=2**20) for n in base_cluster.nodes]
        )
        program = make_jacobi_like(n_rows=4096, cols=4096)
        labels = [p.label for p in spectrum(small, program, steps_per_leg=2)]
        assert labels[-1] == "I-C"
        assert "Bal" not in labels

    def test_no_pressure_collapses_to_bal_leg(self, hetero_cluster):
        program = make_jacobi_like(n_rows=256, cols=8)
        labels = [
            p.label for p in spectrum(hetero_cluster, program, steps_per_leg=2)
        ]
        assert "I-C" not in labels
        assert "Bal" in labels

    def test_full_path_forces_all_anchors(self, base_cluster):
        program = make_jacobi_like(n_rows=256, cols=8)
        labels = [
            p.label
            for p in spectrum(
                base_cluster, program, steps_per_leg=1, full_path=True
            )
        ]
        assert labels == ["Blk", "I-C", "I-C/Bal", "Bal", "Blk"]

    def test_invalid_steps_raise(self, base_cluster):
        program = make_jacobi_like()
        with pytest.raises(DistributionError):
            spectrum(base_cluster, program, steps_per_leg=0)

    def test_memory_pressure_detection(self, base_cluster):
        big = make_jacobi_like(n_rows=16384, cols=8192)
        small = make_jacobi_like(n_rows=64, cols=8)
        assert has_memory_pressure(base_cluster, big)
        assert not has_memory_pressure(base_cluster, small)


class TestOps:
    def test_distance_is_half_l1(self):
        a, b = GenBlock([10, 0]), GenBlock([6, 4])
        assert distribution_distance(a, b) == 4

    def test_distance_zero_for_equal(self):
        a = GenBlock([3, 7])
        assert distribution_distance(a, a) == 0

    def test_redistribution_bytes_counts_moved_rows(self, jacobi_like):
        a, b = GenBlock([256, 256]), GenBlock([128, 384])
        moved = redistribution_bytes(a, b, jacobi_like)
        assert moved == int(128 * jacobi_like.distributed_row_bytes())

    def test_redistribution_zero_for_identical(self, jacobi_like):
        a = GenBlock([256, 256])
        assert redistribution_bytes(a, a, jacobi_like) == 0

    def test_incompatible_distributions_raise(self):
        with pytest.raises(DistributionError):
            distribution_distance(GenBlock([1, 2]), GenBlock([1, 2, 3]))

    def test_in_core_flags(self, base_cluster):
        program = make_jacobi_like(n_rows=4096, cols=4096)
        flags = in_core_flags(block(base_cluster, 4096), base_cluster, program)
        assert flags.dtype == bool
        assert flags.shape == (8,)
