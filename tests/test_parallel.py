"""Tests for the fan-out execution layer (repro.parallel)."""

import pytest

from repro.cluster import config_dc, config_io
from repro.distribution import GenBlock, balanced, block
from repro.experiments import build_model, fig9_accuracy, run_spectrum
from repro.parallel import (
    ParallelRunner,
    SweepCache,
    content_key,
    predict_seconds_sharded,
    resolve_jobs,
    split_shards,
    verify_distributions,
)
from repro.apps import JacobiApp

SCALE = 0.02  # tiny problems: full protocol, milliseconds of wall time


def _square(x):
    return x * x


def _square_shard(shard):
    return [x * x for x in shard]


class TestParallelRunner:
    def test_serial_fallback_is_plain_map(self):
        assert ParallelRunner(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert ParallelRunner(4).map(_square, items) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = [5, 2, 9, 4]
        assert ParallelRunner(3).map(_square, items) == ParallelRunner(1).map(
            _square, items
        )

    def test_empty_and_singleton(self):
        assert ParallelRunner(4).map(_square, []) == []
        assert ParallelRunner(4).map(_square, [7]) == [49]

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # one worker per CPU


class TestShards:
    def test_split_preserves_order_and_content(self):
        items = list(range(10))
        shards = split_shards(items, 3)
        assert [x for shard in shards for x in shard] == items
        assert [len(s) for s in shards] == [4, 3, 3]  # near-equal, large first

    def test_split_never_exceeds_item_count(self):
        assert split_shards([1, 2], 8) == [[1], [2]]
        assert split_shards([], 4) == []
        assert split_shards([1, 2, 3], 1) == [[1, 2, 3]]

    def test_map_shards_matches_flat_map(self):
        items = list(range(23))
        for jobs in (1, 3):
            got = ParallelRunner(jobs).map_shards(_square_shard, items)
            assert got == [x * x for x in items]

    def test_sharded_prediction_bit_identical(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        model = build_model(cluster, program)
        dists = [
            block(cluster, program.n_rows),
            balanced(cluster, program.n_rows),
            block(cluster, program.n_rows).moved(0, 1, 3),
        ]
        serial = predict_seconds_sharded(model, dists, jobs=1)
        assert serial == [
            float(v) for v in model.predict_seconds_batch(dists)
        ]
        assert predict_seconds_sharded(model, dists, jobs=2) == serial


class TestContentKey:
    def test_equal_content_equal_key(self):
        a = config_dc()
        b = config_dc()
        assert a is not b
        assert content_key(a) == content_key(b)

    def test_different_content_different_key(self):
        assert content_key(config_dc()) != content_key(config_io())

    def test_distribution_changes_key(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d1 = block(cluster, program.n_rows)
        d2 = balanced(cluster, program.n_rows)
        k1 = SweepCache.key(cluster, program, d1)
        k2 = SweepCache.key(cluster, program, d2)
        assert (k1 == k2) == (d1.counts == d2.counts)

    def test_program_scale_changes_key(self):
        cluster = config_dc()
        small = JacobiApp.paper(scale=SCALE).structure
        big = JacobiApp.paper(scale=2 * SCALE).structure
        assert content_key(cluster, small) != content_key(cluster, big)


class TestSweepCache:
    def test_hit_and_miss_counters(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d = block(cluster, program.n_rows)
        cache = SweepCache()
        assert cache.lookup(cluster, program, d) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.store(cluster, program, d, 1.5, 1.4)
        assert cache.lookup(cluster, program, d) == (1.5, 1.4)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disk_round_trip(self, tmp_path):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d = block(cluster, program.n_rows)
        path = tmp_path / "sweep-cache.json"
        cache = SweepCache(path)
        cache.store(cluster, program, d, 2.0, 2.1)
        cache.save()
        reloaded = SweepCache(path)
        assert len(reloaded) == 1
        assert reloaded.lookup(cluster, program, d) == (2.0, 2.1)

    def test_perturbation_part_of_key(self):
        from repro.sim import PerturbationConfig

        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d = block(cluster, program.n_rows)
        cache = SweepCache()
        cache.store(cluster, program, d, 1.0, 1.0)
        assert (
            cache.lookup(cluster, program, d, PerturbationConfig.none())
            is None
        )

    def test_max_entries_bounds_store(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        rows = program.n_rows
        n = len(cluster.nodes)
        dists = [
            GenBlock([rows - i * (n - 1)] + [i] * (n - 1)) for i in range(6)
        ]
        cache = SweepCache(max_entries=3)
        for i, d in enumerate(dists):
            cache.store(cluster, program, d, float(i), float(i))
        assert len(cache) == 3
        # The three most recent survive; the oldest were evicted.
        assert cache.lookup(cluster, program, dists[-1]) == (5.0, 5.0)
        assert cache.lookup(cluster, program, dists[0]) is None

    def test_max_entries_round_trip_to_disk(self, tmp_path):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d = block(cluster, program.n_rows)
        path = tmp_path / "bounded-cache.json"
        cache = SweepCache(path, max_entries=8)
        cache.store(cluster, program, d, 3.0, 3.5)
        cache.save()
        reloaded = SweepCache(path, max_entries=8)
        assert reloaded.lookup(cluster, program, d) == (3.0, 3.5)

    def test_interleaved_saves_merge_instead_of_clobbering(self, tmp_path):
        # Regression: save() used to overwrite the file with this
        # cache's view only, silently dropping entries a concurrent
        # process had written since load.  Two caches opened against
        # the same (empty) file stand in for two server processes.
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d1 = block(cluster, program.n_rows)
        d2 = balanced(cluster, program.n_rows)
        assert d1.counts != d2.counts
        path = tmp_path / "fleet-cache.json"
        a = SweepCache(path)
        b = SweepCache(path)
        a.store(cluster, program, d1, 1.0, 1.1)
        b.store(cluster, program, d2, 2.0, 2.2)
        a.save()
        b.save()  # must re-read and keep a's entry
        merged = SweepCache(path)
        assert merged.lookup(cluster, program, d1) == (1.0, 1.1)
        assert merged.lookup(cluster, program, d2) == (2.0, 2.2)
        # The atomic-replace path leaves no temp litter behind.
        assert [p.name for p in tmp_path.iterdir()] == ["fleet-cache.json"]

    def test_save_tolerates_corrupt_disk_file(self, tmp_path):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d = block(cluster, program.n_rows)
        path = tmp_path / "corrupt.json"
        path.write_text('{"half-written', encoding="utf-8")
        cache = SweepCache()  # no path yet: loading would also tolerate it
        cache.path = path
        cache.store(cluster, program, d, 1.0, 1.0)
        cache.save()
        assert SweepCache(path).lookup(cluster, program, d) == (1.0, 1.0)

    def test_bounded_counters_single_source_of_truth(self):
        # Regression: a bounded SweepCache used to increment its own
        # hit/miss counters *and* the backing LRU's, so `repro stats`
        # could report two disagreeing figures for one cache.
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d1 = block(cluster, program.n_rows)
        d2 = balanced(cluster, program.n_rows)
        cache = SweepCache(max_entries=4)
        cache.lookup(cluster, program, d1)        # miss
        cache.store(cluster, program, d1, 1.0, 1.0)
        cache.lookup(cluster, program, d1)        # hit
        cache.lookup(cluster, program, d2)        # miss
        assert (cache.hits, cache.misses) == (1, 2)
        assert cache.hits == cache._store.hits
        assert cache.misses == cache._store.misses
        assert cache.stats == {"size": 1, "hits": 1, "misses": 2}

    def test_unbounded_counters_unchanged(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure
        d = block(cluster, program.n_rows)
        cache = SweepCache()
        cache.lookup(cluster, program, d)
        cache.store(cluster, program, d, 1.0, 1.0)
        cache.lookup(cluster, program, d)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.stats == {"size": 1, "hits": 1, "misses": 1}


class TestPredictMany:
    def test_bit_identical_to_predict_seconds(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        model = build_model(cluster, program)
        candidates = [
            block(cluster, program.n_rows),
            balanced(cluster, program.n_rows),
            block(cluster, program.n_rows),  # shared row counts hit the memo
        ]
        batched = model.predict_many(candidates)
        assert batched == [model.predict_seconds(d) for d in candidates]


def _points(run):
    return [(p.label, p.actual_seconds, p.predicted_seconds) for p in run.points]


class TestSpectrumEquivalence:
    def test_run_spectrum_jobs_bit_identical(self):
        cluster = config_io()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        serial = run_spectrum(cluster, program, steps_per_leg=2, jobs=1)
        fanned = run_spectrum(cluster, program, steps_per_leg=2, jobs=4)
        assert _points(serial) == _points(fanned)

    def test_run_spectrum_cache_bit_identical(self):
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        cache = SweepCache()
        cold = run_spectrum(cluster, program, steps_per_leg=2, cache=cache)
        stored = len(cache)
        warm = run_spectrum(cluster, program, steps_per_leg=2, cache=cache)
        assert _points(cold) == _points(warm)
        assert stored > 0
        assert len(cache) == stored  # nothing re-emulated
        assert cache.hits >= stored

    def test_fig9_jobs_bit_identical(self):
        kwargs = dict(
            panel="all",
            architectures=[config_dc(), config_io()],
            scale=SCALE,
            steps_per_leg=1,
        )
        serial = fig9_accuracy(jobs=1, **kwargs)
        fanned = fig9_accuracy(jobs=4, **kwargs)
        assert serial.labels == fanned.labels
        assert serial.minimum == fanned.minimum
        assert serial.average == fanned.average
        assert serial.maximum == fanned.maximum
        for a, b in zip(serial.runs, fanned.runs):
            assert _points(a) == _points(b)


class TestVerifyDistributions:
    def test_matches_direct_emulation(self):
        from repro.sim import ClusterEmulator

        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        dists = [
            block(cluster, program.n_rows),
            balanced(cluster, program.n_rows),
        ]
        emulator = ClusterEmulator(cluster, program)
        direct = [emulator.run(d).total_seconds for d in dists]
        assert verify_distributions(cluster, program, dists, jobs=1) == direct
        assert verify_distributions(cluster, program, dists, jobs=2) == direct
