"""Tests for the real numeric kernels."""

import numpy as np
import pytest

from repro.apps.kernels import (
    cg_solve,
    jacobi_solve,
    lanczos_tridiagonalize,
    make_sparse_spd_matrix,
    multigrid_solve,
    rna_fold,
)
from repro.apps.kernels.lanczos_kernel import make_spd_dense
from repro.apps.kernels.rna_kernel import random_sequence


class TestJacobiKernel:
    def grid(self, n=24):
        g = np.zeros((n, n))
        g[0, :] = 1.0
        return g

    def test_converges_on_laplace(self):
        result = jacobi_solve(self.grid(), max_iterations=5000, tolerance=1e-7)
        assert result.converged

    def test_residuals_monotone_decreasing_eventually(self):
        result = jacobi_solve(self.grid(), max_iterations=200)
        assert result.residuals[-1] < result.residuals[0]

    def test_boundary_preserved(self):
        result = jacobi_solve(self.grid(), max_iterations=50)
        assert np.array_equal(result.grid[0, :], np.ones(24))
        assert np.array_equal(result.grid[-1, :], np.zeros(24))

    def test_maximum_principle(self):
        # Interior values stay between boundary extremes.
        result = jacobi_solve(self.grid(), max_iterations=500)
        assert result.grid.min() >= 0.0 - 1e-12
        assert result.grid.max() <= 1.0 + 1e-12

    def test_input_not_mutated(self):
        g = self.grid()
        copy = g.copy()
        jacobi_solve(g, max_iterations=10)
        assert np.array_equal(g, copy)

    def test_too_small_grid_raises(self):
        with pytest.raises(ValueError):
            jacobi_solve(np.zeros((2, 2)))


class TestCgKernel:
    def test_solves_spd_system(self):
        a = make_sparse_spd_matrix(120, avg_nnz=6)
        b = np.ones(120)
        result = cg_solve(a, b, max_iterations=200, tolerance=1e-10)
        assert result.converged
        assert np.linalg.norm(a.matvec(result.x) - b) < 1e-8

    def test_residuals_recorded(self):
        a = make_sparse_spd_matrix(60, avg_nnz=4)
        result = cg_solve(a, np.ones(60), max_iterations=10, tolerance=0.0)
        assert len(result.residual_norms) == result.iterations + 1

    def test_matrix_is_symmetric(self):
        a = make_sparse_spd_matrix(50, avg_nnz=5)
        dense = np.zeros((50, 50))
        for i in range(50):
            for j_idx in range(a.indptr[i], a.indptr[i + 1]):
                dense[i, a.indices[j_idx]] = a.data[j_idx]
        assert np.allclose(dense, dense.T)

    def test_row_nnz_varies(self):
        a = make_sparse_spd_matrix(200, avg_nnz=8)
        nnz = a.row_nnz()
        assert nnz.min() < nnz.max()

    def test_matvec_matches_dense(self):
        a = make_sparse_spd_matrix(40, avg_nnz=5)
        dense = np.zeros((40, 40))
        for i in range(40):
            for j_idx in range(a.indptr[i], a.indptr[i + 1]):
                dense[i, a.indices[j_idx]] = a.data[j_idx]
        x = np.arange(40, dtype=float)
        assert np.allclose(a.matvec(x), dense @ x)

    def test_deterministic_matrix(self):
        a = make_sparse_spd_matrix(50, avg_nnz=5)
        b = make_sparse_spd_matrix(50, avg_nnz=5)
        assert np.array_equal(a.data, b.data)

    def test_x0_respected(self):
        a = make_sparse_spd_matrix(30, avg_nnz=4)
        b = np.ones(30)
        exact = cg_solve(a, b, max_iterations=100, tolerance=1e-12).x
        warm = cg_solve(a, b, max_iterations=1, tolerance=1e-12, x0=exact)
        assert warm.converged


class TestLanczosKernel:
    def test_extreme_ritz_values_converge(self):
        a = make_spd_dense(48)
        result = lanczos_tridiagonalize(a, iterations=24)
        true = np.linalg.eigvalsh(a)
        ritz = result.ritz_values()
        assert ritz[-1] == pytest.approx(true[-1], rel=1e-3)

    def test_basis_orthonormal(self):
        a = make_spd_dense(32)
        result = lanczos_tridiagonalize(a, iterations=8)
        gram = result.basis @ result.basis.T
        assert np.allclose(gram, np.eye(len(result.alphas)), atol=1e-8)

    def test_tridiagonal_shape(self):
        a = make_spd_dense(16)
        result = lanczos_tridiagonalize(a, iterations=5)
        t = result.tridiagonal
        assert t.shape == (5, 5)
        assert np.allclose(t, t.T)
        # Entries beyond the first off-diagonals are zero.
        assert t[0, 2] == 0.0

    def test_asymmetric_matrix_raises(self):
        m = np.arange(16, dtype=float).reshape(4, 4)
        with pytest.raises(ValueError):
            lanczos_tridiagonalize(m)

    def test_iterations_capped_by_dimension(self):
        a = make_spd_dense(6)
        result = lanczos_tridiagonalize(a, iterations=50)
        assert len(result.alphas) <= 6


class TestRnaKernel:
    def test_known_fold(self):
        # GGGAAACCC: the three G-C pairs close a hairpin.
        result = rna_fold("GGGAAACCC", min_loop=3)
        assert result.best_pairs == 3

    def test_no_pairs_possible(self):
        result = rna_fold("AAAAAA")
        assert result.best_pairs == 0
        assert result.pairing == []

    def test_traceback_consistent_with_score(self):
        seq = random_sequence(48)
        result = rna_fold(seq)
        assert len(result.pairing) == result.best_pairs

    def test_traceback_pairs_are_valid(self):
        seq = random_sequence(40)
        result = rna_fold(seq, min_loop=3)
        pairs = {("A", "U"), ("U", "A"), ("C", "G"), ("G", "C"),
                 ("G", "U"), ("U", "G")}
        used = set()
        for i, j in result.pairing:
            assert (seq[i], seq[j]) in pairs
            assert j - i > 3  # min loop respected
            assert i not in used and j not in used
            used.update((i, j))

    def test_min_loop_enforced(self):
        # With min_loop=3 a pair needs at least three unpaired bases in
        # between: GAAC (two) cannot pair, GAAAC (three) can.
        assert rna_fold("GAAC", min_loop=3).best_pairs == 0
        assert rna_fold("GAAAC", min_loop=3).best_pairs == 1

    def test_invalid_letters_raise(self):
        with pytest.raises(ValueError):
            rna_fold("ACGT")  # T is DNA

    def test_empty_sequence(self):
        assert rna_fold("").best_pairs == 0

    def test_table_is_wavefront_monotone(self):
        seq = random_sequence(30)
        table = rna_fold(seq).table
        # Scores grow with subsequence span.
        for i in range(5):
            row = table[i, i:]
            assert all(np.diff(row) >= 0)


class TestMultigridKernel:
    def rhs(self, n=129):
        x = np.linspace(0, 1, n)
        return np.sin(np.pi * x) * np.pi**2, np.sin(np.pi * x)

    def test_converges_to_analytic_solution(self):
        f, exact = self.rhs()
        result = multigrid_solve(f, cycles=40, tolerance=1e-9)
        assert np.abs(result.solution - exact).max() < 1e-4

    def test_residuals_decrease(self):
        f, _ = self.rhs()
        result = multigrid_solve(f, cycles=10, tolerance=0.0)
        assert result.residual_norms[-1] < result.residual_norms[0] / 10

    def test_non_power_of_two_raises(self):
        with pytest.raises(ValueError):
            multigrid_solve(np.ones(100))

    def test_zero_rhs_gives_zero_solution(self):
        result = multigrid_solve(np.zeros(65), cycles=2)
        assert np.abs(result.solution).max() < 1e-12
