"""Unit tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Delay, Engine, Recv, Send, Spawn


def run(*procs):
    engine = Engine()
    for node, proc in procs:
        engine.add_process(proc, node)
    return engine.run()


class TestDelay:
    def test_delays_accumulate(self):
        def proc():
            t = yield Delay(1.0)
            assert t == pytest.approx(1.0)
            t = yield Delay(2.5)
            assert t == pytest.approx(3.5)

        assert run((0, proc())) == pytest.approx(3.5)

    def test_zero_delay_is_free(self):
        def proc():
            for _ in range(1000):
                yield Delay(0.0)

        assert run((0, proc())) == 0.0

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Delay(-1.0)

    def test_nan_delay_raises(self):
        with pytest.raises(SimulationError):
            Delay(float("nan"))


class TestSendRecv:
    def test_message_arrives_after_transfer(self):
        times = {}

        def sender():
            yield Delay(1.0)
            yield Send(1, "m", transfer=0.5)

        def receiver():
            result = yield Recv(0, "m")
            times["arrival"] = float(result)

        run((0, sender()), (1, receiver()))
        assert times["arrival"] == pytest.approx(1.5)

    def test_recv_before_send_blocks(self):
        order = []

        def sender():
            yield Delay(2.0)
            order.append("send")
            yield Send(1, "m", transfer=0.0)

        def receiver():
            order.append("recv-posted")
            yield Recv(0, "m")
            order.append("recv-done")

        run((0, sender()), (1, receiver()))
        assert order == ["recv-posted", "send", "recv-done"]

    def test_send_before_recv_buffers(self):
        def sender():
            yield Send(1, "m", transfer=0.25)

        def receiver():
            yield Delay(5.0)
            result = yield Recv(0, "m")
            # Message waited in the mailbox; receiver sees its own time.
            assert float(result) == pytest.approx(5.0)

        run((0, sender()), (1, receiver()))

    def test_payload_delivery(self):
        got = []

        def sender():
            yield Send(1, "m", payload={"x": 42})

        def receiver():
            result = yield Recv(0, "m")
            got.append(result.payload)

        run((0, sender()), (1, receiver()))
        assert got == [{"x": 42}]

    def test_fifo_per_channel(self):
        got = []

        def sender():
            yield Send(1, "m", payload=1)
            yield Send(1, "m", payload=2)

        def receiver():
            a = yield Recv(0, "m")
            b = yield Recv(0, "m")
            got.extend([a.payload, b.payload])

        run((0, sender()), (1, receiver()))
        assert got == [1, 2]

    def test_tags_isolate_channels(self):
        got = []

        def sender():
            yield Send(1, "b", payload="B")
            yield Send(1, "a", payload="A")

        def receiver():
            a = yield Recv(0, "a")
            b = yield Recv(0, "b")
            got.extend([a.payload, b.payload])

        run((0, sender()), (1, receiver()))
        assert got == ["A", "B"]

    def test_negative_transfer_raises(self):
        with pytest.raises(SimulationError):
            Send(1, "m", transfer=-1.0)

    def test_deadlock_detected(self):
        def receiver():
            yield Recv(0, "never")

        with pytest.raises(SimulationError, match="deadlock"):
            run((1, receiver()))

    def test_double_recv_same_channel_raises(self):
        def r1():
            yield Recv(0, "m")

        def r2():
            yield Recv(0, "m")

        with pytest.raises(SimulationError):
            run((1, r1()), (1, r2()))


class TestSpawn:
    def test_spawned_process_runs(self):
        events = []

        def child():
            yield Delay(1.0)
            events.append("child-done")

        def parent():
            yield Spawn(child())
            yield Delay(0.5)
            events.append("parent-done")

        total = run((0, parent()))
        assert total == pytest.approx(1.0)
        assert set(events) == {"child-done", "parent-done"}


class TestDeterminism:
    def test_tie_break_by_insertion_order(self):
        order = []

        def proc(name):
            yield Delay(1.0)
            order.append(name)

        run((0, proc("a")), (1, proc("b")), (2, proc("c")))
        assert order == ["a", "b", "c"]

    def test_repeat_runs_identical(self):
        def make():
            def sender():
                for i in range(5):
                    yield Delay(0.1)
                    yield Send(1, f"m{i}", transfer=0.05)

            def receiver():
                for i in range(5):
                    yield Recv(0, f"m{i}")
                    yield Delay(0.01)

            return [(0, sender()), (1, receiver())]

        assert run(*make()) == run(*make())


class TestEngineSemantics:
    """Regression pins for semantics the hot-loop rewrite must keep."""

    def test_equal_time_events_dispatch_in_insertion_sequence(self):
        # Ties created mid-run (not just at setup) also break by the
        # order the events were pushed.
        order = []

        def proc(name, lead):
            yield Delay(lead)  # stagger the *pushes* of the tied event
            yield Delay(1.0 - lead)  # ...which all fire at t == 1.0
            order.append(name)

        run((0, proc("a", 0.00)), (1, proc("b", 0.25)), (2, proc("c", 0.50)))
        assert order == ["a", "b", "c"]

    def test_deadlock_message_names_blocked_channels(self):
        def receiver():
            yield Recv(3, "halo")

        with pytest.raises(
            SimulationError, match=r"deadlock: receivers blocked on node7<-node3:halo"
        ):
            run((7, receiver()))

    def test_send_wakes_waiter_at_delivery_time(self):
        # A blocked receiver resumes at the *delivery* time (send time
        # plus transfer), never earlier.
        times = {}

        def sender():
            yield Delay(1.0)
            yield Send(1, "m", transfer=2.0)
            yield Delay(0.0)

        def receiver():
            result = yield Recv(0, "m")
            times["resume"] = float(result)

        run((0, sender()), (1, receiver()))
        assert times["resume"] == pytest.approx(3.0)

    def test_send_wakes_waiter_immediately_with_zero_transfer(self):
        times = {}

        def sender():
            yield Delay(1.5)
            yield Send(1, "m", transfer=0.0)

        def receiver():
            result = yield Recv(0, "m")
            times["resume"] = float(result)

        run((0, sender()), (1, receiver()))
        assert times["resume"] == pytest.approx(1.5)

    def test_spawn_inherits_parent_node(self):
        # The child's sends must originate from the parent's node: a
        # receiver listening for node 2 gets the child's message.
        got = []

        def child():
            yield Delay(0.5)
            yield Send(0, "from-child", payload="hi")

        def parent():
            yield Spawn(child())
            yield Delay(0.1)

        def receiver():
            result = yield Recv(2, "from-child")
            got.append(result.payload)

        engine = Engine()
        pid_parent = engine.add_process(parent(), node=2)
        engine.add_process(receiver(), node=0)
        engine.run()
        assert got == ["hi"]
        # And the bookkeeping agrees: the spawned pid maps to node 2.
        spawned = max(engine._pid_node)
        assert spawned != pid_parent
        assert engine._pid_node[spawned] == 2

    def test_request_subclasses_still_dispatch(self):
        # The type-keyed dispatch table admits subclasses lazily.
        class SlowDelay(Delay):
            pass

        def proc():
            t = yield SlowDelay(2.0)
            assert t == pytest.approx(2.0)

        assert run((0, proc())) == pytest.approx(2.0)

    def test_generator_started_once_per_pid(self):
        # The per-pid started flag must not re-prime a generator that
        # already ran: the first resume returns the engine time, later
        # resumes return updated times.
        seen = []

        def proc():
            t = yield Delay(1.0)
            seen.append(t)
            t = yield Delay(1.0)
            seen.append(t)

        run((0, proc()))
        assert seen == [pytest.approx(1.0), pytest.approx(2.0)]


class TestEngineMisc:
    def test_empty_engine_returns_zero(self):
        assert Engine().run() == 0.0

    def test_finish_time_is_max_over_processes(self):
        def fast():
            yield Delay(1.0)

        def slow():
            yield Delay(3.0)

        assert run((0, fast()), (1, slow())) == pytest.approx(3.0)

    def test_unknown_request_raises(self):
        def proc():
            yield "not-a-request"

        with pytest.raises(SimulationError, match="unknown request"):
            run((0, proc()))

    def test_trace_hook_sees_requests(self):
        seen = []
        engine = Engine(trace_hook=lambda t, pid, req: seen.append(type(req)))

        def proc():
            yield Delay(1.0)
            yield Send(0, "m")

        engine.add_process(proc(), node=0)
        engine.run()
        assert Delay in seen and Send in seen
