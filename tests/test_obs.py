"""Unit tests for the ``repro.obs`` telemetry primitives."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    as_recorder,
    reset_warnings,
    warn_once,
)


class TestPrimitives:
    def test_counters_accumulate(self):
        rec = Recorder()
        rec.count("a")
        rec.count("a", 4)
        rec.count("b", 2.5)
        assert rec.counters == {"a": 5, "b": 2.5}

    def test_gauges_last_write_wins(self):
        rec = Recorder()
        rec.set("g", 1.0)
        rec.set("g", 7.0)
        assert rec.gauges == {"g": 7.0}

    def test_observe_tracks_total_count_min_max(self):
        rec = Recorder()
        rec.observe("s", 3.0)
        rec.observe("s", 1.0)
        rec.observe("s", 5.0)
        assert rec.series["s"] == [9.0, 3, 1.0, 5.0]

    def test_observe_with_weight(self):
        rec = Recorder()
        rec.observe("s", 10.0, n=4)
        assert rec.series["s"] == [10.0, 4, 10.0, 10.0]

    def test_enabled_truthiness(self):
        assert Recorder()
        assert not Recorder(enabled=False)
        assert not NullRecorder()

    def test_disabled_recorder_records_nothing(self):
        rec = Recorder(enabled=False)
        rec.count("a")
        rec.set("g", 1.0)
        rec.observe("s", 1.0)
        with rec.span("x"):
            pass
        assert not rec.counters and not rec.gauges and not rec.series


class TestSpans:
    def test_span_records_wall_time(self):
        ticks = iter([0.0, 1.5])
        rec = Recorder(clock=lambda: next(ticks))
        with rec.span("work"):
            pass
        assert rec.series["span/work"] == [1.5, 1, 1.5, 1.5]

    def test_nested_spans_build_slash_paths(self):
        ticks = iter([0.0, 1.0, 3.0, 6.0])
        rec = Recorder(clock=lambda: next(ticks))
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        assert rec.series["span/outer/inner"] == [2.0, 1, 2.0, 2.0]
        assert rec.series["span/outer"] == [6.0, 1, 6.0, 6.0]

    def test_span_stack_unwinds_on_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError()
        assert rec._stack == []
        assert "span/boom" in rec.series


class TestNullRecorder:
    def test_singleton_is_noop(self):
        NULL_RECORDER.count("a")
        NULL_RECORDER.set("g", 1.0)
        NULL_RECORDER.observe("s", 1.0)
        with NULL_RECORDER.span("x"):
            pass
        assert not NULL_RECORDER.counters
        assert not NULL_RECORDER.gauges
        assert not NULL_RECORDER.series

    def test_as_recorder_normalises(self):
        assert as_recorder(None) is NULL_RECORDER
        assert as_recorder(Recorder(enabled=False)) is NULL_RECORDER
        rec = Recorder()
        assert as_recorder(rec) is rec


class TestAggregation:
    def test_merge_combines_everything(self):
        a, b = Recorder(), Recorder()
        a.count("c", 1)
        b.count("c", 2)
        a.set("g", 1.0)
        b.set("g", 9.0)
        a.observe("s", 2.0)
        b.observe("s", 8.0)
        b.observe("only_b", 1.0)
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.gauges["g"] == 9.0
        assert a.series["s"] == [10.0, 2, 2.0, 8.0]
        assert a.series["only_b"] == [1.0, 1, 1.0, 1.0]

    def test_clear(self):
        rec = Recorder()
        rec.count("a")
        rec.set("g", 1.0)
        rec.observe("s", 1.0)
        rec.clear()
        assert not rec.counters and not rec.gauges and not rec.series


class TestExport:
    def _sample(self):
        rec = Recorder()
        rec.count("hits", 3)
        rec.set("size", 7.0)
        rec.observe("dt", 2.0)
        rec.observe("dt", 4.0)
        return rec

    def test_snapshot_shape(self):
        snap = self._sample().snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"size": 7.0}
        assert snap["series"]["dt"] == {
            "total": 6.0, "count": 2, "min": 2.0, "max": 4.0, "mean": 3.0,
        }

    def test_to_json_round_trips(self):
        assert json.loads(self._sample().to_json()) == self._sample().snapshot()

    def test_to_csv_has_header_and_rows(self):
        lines = self._sample().to_csv().strip().splitlines()
        assert lines[0] == "kind,name,value,count,min,max,mean"
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"counter", "gauge", "series"}

    def test_describe_mentions_every_name(self):
        text = self._sample().describe()
        for name in ("hits", "size", "dt"):
            assert name in text
        assert Recorder().describe() == "(no telemetry recorded)"


class TestWarnOnce:
    def test_warns_exactly_once_per_alias(self):
        reset_warnings()
        with pytest.warns(DeprecationWarning, match="old_name"):
            warn_once("old_name", "new_name")
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            warn_once("old_name", "new_name")  # silent second call

    def test_reset_allows_rewarning(self):
        reset_warnings()
        with pytest.warns(DeprecationWarning):
            warn_once("again", "new")
        reset_warnings()
        with pytest.warns(DeprecationWarning):
            warn_once("again", "new")
