"""Tests for the experiment harness (small-scale runs of every artefact)."""

import pytest

from repro.cluster import config_dc, config_io, table1_configs
from repro.experiments import (
    build_model,
    config_curves,
    distribution_spread,
    error_ablation,
    fig9_accuracy,
    model_evaluation_timing,
    run_spectrum,
    table1,
)
from repro.experiments.common import percent_difference
from repro.apps import JacobiApp, application_by_name

SCALE = 0.02  # tiny problems: full protocol, milliseconds of wall time


class TestPercentDifference:
    def test_symmetric_metric(self):
        assert percent_difference(100.0, 110.0) == pytest.approx(10.0)
        assert percent_difference(110.0, 100.0) == pytest.approx(10.0)

    def test_uses_minimum_denominator(self):
        # |a-p| / min(a,p): the paper's definition.
        assert percent_difference(50.0, 100.0) == pytest.approx(100.0)

    def test_degenerate_times_raise(self):
        # A non-positive time is degenerate data, not a perfect
        # prediction; it must not be silently reported as 0% error.
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            percent_difference(0.0, 0.0)
        with pytest.raises(ExperimentError):
            percent_difference(0.0, 1.0)
        with pytest.raises(ExperimentError):
            percent_difference(1.0, -2.0)


class TestRunSpectrum:
    def test_compares_every_point(self):
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        run = run_spectrum(config_io(), program, steps_per_leg=2)
        assert len(run.points) >= 3
        for p in run.points:
            assert p.actual_seconds > 0
            assert p.predicted_seconds > 0

    def test_best_points_identified(self):
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        run = run_spectrum(config_dc(), program, steps_per_leg=2)
        assert run.best_actual.actual_seconds == min(
            p.actual_seconds for p in run.points
        )
        assert run.spread >= 1.0

    def test_model_reuse(self):
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(3)
        cluster = config_dc()
        model = build_model(cluster, program)
        run = run_spectrum(cluster, program, steps_per_leg=1, model=model)
        assert run.points


class TestFig9:
    def test_small_panel_aggregates(self):
        bands = fig9_accuracy(
            panel="all",
            architectures=[config_dc(), config_io()],
            scale=SCALE,
            steps_per_leg=1,
        )
        assert len(bands.labels) == 5  # Blk, I-C, I-C/Bal, Bal, Blk
        assert len(bands.runs) == 2 * 4  # 2 architectures x 4 apps
        for lo, avg, hi in zip(bands.minimum, bands.average, bands.maximum):
            assert lo <= avg <= hi

    def test_panel_selection(self):
        bands = fig9_accuracy(
            panel="cg",
            architectures=[config_io()],
            scale=SCALE,
            steps_per_leg=1,
        )
        assert len(bands.runs) == 1
        assert "CG" in bands.title

    def test_unknown_panel_raises(self):
        with pytest.raises(ValueError):
            fig9_accuracy(panel="bogus")

    def test_describe_renders(self):
        bands = fig9_accuracy(
            panel="rna",
            architectures=[config_dc()],
            scale=SCALE,
            steps_per_leg=1,
        )
        text = bands.describe()
        assert "overall" in text and "%" in text

    def test_prefetch_panel(self):
        bands = fig9_accuracy(
            panel="jacobi-prefetch",
            architectures=[config_io()],
            scale=SCALE,
            steps_per_leg=1,
        )
        assert all(run.app_name == "jacobi" for run in bands.runs)


class TestConfigCurves:
    def test_one_run_per_app(self):
        curves = config_curves(
            "DC", steps_per_leg=1, scale=SCALE, apps=["jacobi", "rna"]
        )
        assert {r.app_name for r in curves.runs} == {"jacobi", "rna"}

    def test_circles(self):
        curves = config_curves(
            "IO", steps_per_leg=2, scale=SCALE, apps=["jacobi"]
        )
        best_actual, best_predicted = curves.circles()["jacobi"]
        labels = [p.label for p in curves.run("jacobi").points]
        assert best_actual in labels and best_predicted in labels

    def test_describe_renders_series(self):
        curves = config_curves(
            "DC", steps_per_leg=1, scale=SCALE, apps=["lanczos"]
        )
        text = curves.describe()
        assert "lanczos-Actual" in text
        assert "lanczos-Predicted" in text

    def test_unknown_app_lookup_raises(self):
        curves = config_curves(
            "DC", steps_per_leg=1, scale=SCALE, apps=["jacobi"]
        )
        with pytest.raises(KeyError):
            curves.run("cg")


class TestTable1:
    def test_all_configs_rendered(self):
        text = table1()
        for name in table1_configs():
            assert name in text

    def test_descriptions_match_paper(self):
        text = table1()
        assert "high I/O latency and small memories" in text
        assert "low I/O latencies and small memories" in text


class TestTimingClaim:
    def test_fast_enough_for_runtime_use(self):
        program = JacobiApp.paper(scale=SCALE).structure
        timing = model_evaluation_timing(program=program, repeats=2)
        assert timing.usable_on_the_fly
        assert timing.min_ms <= timing.mean_ms <= timing.max_ms
        assert "ms" in timing.describe()


class TestSpread:
    def test_spreads_at_least_one(self):
        result = distribution_spread(
            configs=["DC"], steps_per_leg=1, scale=SCALE
        )
        for value in result.spreads.values():
            assert value >= 1.0

    def test_describe_includes_paper_reference(self):
        result = distribution_spread(
            configs=["DC"], steps_per_leg=1, scale=SCALE
        )
        assert "worst/best" in result.describe()


class TestAblation:
    def test_effects_reported(self):
        result = error_ablation(steps_per_leg=1, scale=SCALE)
        assert set(result.without) == {
            "compute-noise",
            "cache-effects",
            "os-read-cache",
            "sparse-weights",
            "runtime-overhead",
        }
        assert result.baseline_mean >= 0.0
        assert "ablation" in result.describe().lower()
