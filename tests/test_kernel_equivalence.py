"""Golden equivalence: the numpy prediction kernel vs the scalar reference.

The vectorised kernel (max-plus section matrices, batched stage tables,
the persistent ``(node, rows)`` table cache) must reproduce the scalar
path to within floating-point re-association noise.  Every optimisation
in the numpy path is max-plus linear — only the *order* of summations
differs — so the contract is tight: ``REL_TOL = 1e-12`` relative error
on every seed program, cluster, distribution family, prefetch variant
and iteration-profile program.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import (
    ConjugateGradientApp,
    JacobiApp,
    LanczosApp,
    MultigridApp,
    RnaPipelineApp,
)
from repro.cluster import configs
from repro.core.model import MhetaModel
from repro.distribution import GenBlock, block, largest_remainder_round, spectrum
from repro.instrument.collect import collect_inputs

REL_TOL = 1e-12
SCALE = 0.05

APPS = {
    "jacobi": JacobiApp,
    "cg": ConjugateGradientApp,
    "rna": RnaPipelineApp,
    "lanczos": LanczosApp,
    "multigrid": MultigridApp,
}
CLUSTERS = {
    "DC": configs.config_dc,
    "IO": configs.config_io,
    "HY1": configs.config_hy1,
    "HY2": configs.config_hy2,
}


def _model_pair(cluster, program, kernel="numpy"):
    """(scalar reference, vectorized kernel) over identical inputs.

    ``kernel`` selects the candidate under test: the numpy path or the
    compiled evaluation plan (``kernel="plan"``) — both are pinned to
    the same scalar reference at the same tolerance."""
    inputs = collect_inputs(cluster, program, block(cluster, program.n_rows))
    scalar = MhetaModel(program, cluster, inputs, kernel="scalar",
                        table_cache=0)
    vector = MhetaModel(program, cluster, inputs, kernel=kernel)
    return scalar, vector


def _assert_close(a: float, b: float) -> None:
    assert a > 0 and b > 0
    assert abs(a - b) <= REL_TOL * max(abs(a), abs(b)), (
        f"kernels diverge: scalar={a!r} numpy={b!r} "
        f"rel={abs(a - b) / max(abs(a), abs(b)):.3e}"
    )


def _candidates(cluster, program):
    """Block plus the full spectrum walk — the shapes searches evaluate."""
    cands = [block(cluster, program.n_rows)]
    cands += [p.distribution
              for p in spectrum(cluster, program, steps_per_leg=3)]
    return cands


# -- golden sweep: every seed app on every seed cluster ----------------------


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
@pytest.mark.parametrize("cluster_name", sorted(CLUSTERS))
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_golden_equivalence(app_name, cluster_name, kernel):
    cluster = CLUSTERS[cluster_name]()
    program = APPS[app_name].paper(SCALE).structure
    scalar, vector = _model_pair(cluster, program, kernel)
    for dist in _candidates(cluster, program):
        _assert_close(scalar.predict_seconds(dist),
                      vector.predict_seconds(dist))


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
@pytest.mark.parametrize("cluster_name", ["IO", "HY1"])
@pytest.mark.parametrize("app_name", ["jacobi", "rna"])
def test_golden_equivalence_prefetch(app_name, cluster_name, kernel):
    """The prefetch I/O model (Equation 2) through both kernels."""
    cluster = CLUSTERS[cluster_name]()
    program = APPS[app_name].paper(SCALE).prefetching()
    scalar, vector = _model_pair(cluster, program, kernel)
    for dist in _candidates(cluster, program):
        _assert_close(scalar.predict_seconds(dist),
                      vector.predict_seconds(dist))


@pytest.mark.parametrize("kernel", ["numpy", "plan"])
@pytest.mark.parametrize("cluster_name", ["DC", "HY2"])
def test_golden_equivalence_iteration_profile(cluster_name, kernel):
    """Per-iteration work profiles force the full iteration walk (no
    steady-state extrapolation) in both kernels; ``kernel="plan"``
    models loop the numpy walk for profile programs."""
    cluster = CLUSTERS[cluster_name]()
    base = JacobiApp.paper(SCALE).structure
    profile = 1.0 + 0.5 * np.sin(np.arange(base.iterations))
    program = base.with_iteration_profile(profile)
    scalar, vector = _model_pair(cluster, program, kernel)
    for dist in _candidates(cluster, program):
        _assert_close(scalar.predict_seconds(dist),
                      vector.predict_seconds(dist))


def test_golden_equivalence_report_totals():
    """`predict` (full report) agrees across kernels, per node."""
    cluster = configs.config_hy1()
    program = ConjugateGradientApp.paper(SCALE).structure
    scalar, vector = _model_pair(cluster, program)
    for dist in _candidates(cluster, program)[:4]:
        rs = scalar.predict(dist, report=True)
        rv = vector.predict(dist, report=True)
        _assert_close(rs.total_seconds, rv.total_seconds)
        for ns, nv in zip(rs.nodes, rv.nodes):
            _assert_close(ns.total_seconds, nv.total_seconds)


def test_predict_many_matches_serial_calls():
    """The batched path (shared LRU) is bit-identical to serial calls."""
    cluster = configs.config_hy1()
    program = JacobiApp.paper(SCALE).structure
    _, vector = _model_pair(cluster, program)
    cands = _candidates(cluster, program)
    serial = [vector.predict_seconds(d) for d in cands]
    assert vector.predict_many(cands) == serial


def test_table_cache_does_not_change_results():
    """Cached and cache-disabled numpy models agree bit-for-bit."""
    cluster = configs.config_io()
    program = LanczosApp.paper(SCALE).structure
    inputs = collect_inputs(cluster, program, block(cluster, program.n_rows))
    cached = MhetaModel(program, cluster, inputs, kernel="numpy")
    uncached = MhetaModel(program, cluster, inputs, kernel="numpy",
                          table_cache=0)
    for dist in _candidates(cluster, program):
        assert cached.predict_seconds(dist) == uncached.predict_seconds(dist)
    stats = cached.table_cache_stats
    assert stats["hits"] > 0


# -- randomized distributions -------------------------------------------------

_JACOBI_FIXTURES = {}


def _jacobi_pair(cluster_name):
    if cluster_name not in _JACOBI_FIXTURES:
        cluster = CLUSTERS[cluster_name]()
        program = JacobiApp.paper(SCALE).structure
        scalar, vector = _model_pair(cluster, program)
        _, plan = _model_pair(cluster, program, "plan")
        _JACOBI_FIXTURES[cluster_name] = (program, scalar, vector, plan)
    return _JACOBI_FIXTURES[cluster_name]


@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=8, max_size=8,
    ),
    cluster_name=st.sampled_from(sorted(CLUSTERS)),
)
def test_random_distributions_agree(weights, cluster_name):
    """Arbitrary GEN_BLOCK shapes — including wildly skewed ones a search
    would never visit — keep the kernels within tolerance."""
    program, scalar, vector, plan = _jacobi_pair(cluster_name)
    counts = largest_remainder_round(
        np.array(weights), program.n_rows, minimum=1
    )
    dist = GenBlock(counts)
    reference = scalar.predict_seconds(dist)
    _assert_close(reference, vector.predict_seconds(dist))
    _assert_close(reference, plan.predict_seconds(dist))
