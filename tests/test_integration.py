"""End-to-end integration tests: the reproduction's headline behaviours
at reduced scale.

The full-scale numbers live in the benchmarks (and EXPERIMENTS.md); these
tests check the same pipelines hold together at a scale that runs in
seconds.
"""

import pytest

from repro.cluster import config_dc, config_hy1, config_io, table1_configs
from repro.core import MhetaModel
from repro.distribution import block, spectrum
from repro.experiments import build_model, run_spectrum
from repro.instrument import collect_inputs
from repro.instrument.collect import MeasurementConfig
from repro.search import GeneralizedBinarySearch
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.apps import JacobiApp, application_by_name, paper_applications

SCALE = 0.05


class TestModelMirrorsEmulatorExactly:
    """With perturbations off, MHETA's equations are exact across every
    Table-1 configuration and every application — the strongest internal
    consistency check the reproduction has."""

    @pytest.mark.parametrize("config_name", ["DC", "IO", "HY1", "HY2"])
    @pytest.mark.parametrize("app_name", ["jacobi", "cg", "lanczos", "rna"])
    def test_exact_agreement(self, config_name, app_name):
        cluster = table1_configs()[config_name]
        program = application_by_name(
            app_name, scale=SCALE
        ).structure.with_iterations(2)
        ideal = PerturbationConfig.none()
        d0 = block(cluster, program.n_rows)
        inputs = collect_inputs(
            cluster, program, d0, perturbation=ideal,
            measurement=MeasurementConfig.perfect(),
        )
        model = MhetaModel(program, cluster, inputs)
        emulator = ClusterEmulator(cluster, program, ideal)
        for point in spectrum(cluster, program, steps_per_leg=1):
            actual = emulator.run(point.distribution).total_seconds
            predicted = model.predict_seconds(point.distribution)
            assert predicted == pytest.approx(actual, rel=1e-9), point.label


class TestAccuracyAtSmallScale:
    """With perturbations on, errors are small but non-zero — the same
    qualitative band the paper reports (average ~2%, max well under
    100%)."""

    @pytest.mark.parametrize("config_name", ["DC", "IO", "HY1"])
    def test_jacobi_accuracy_band(self, config_name):
        cluster = table1_configs()[config_name]
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(5)
        run = run_spectrum(cluster, program, steps_per_leg=2)
        assert run.mean_error_percent < 10.0
        assert run.max_error_percent < 30.0
        assert run.mean_error_percent > 0.0  # perturbations do act

    def test_blk_self_prediction_is_tight(self):
        """Predicting the instrumented distribution itself errs by at
        most ~1% (paper Section 5.2.1)."""
        cluster = config_io()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(5)
        model = build_model(cluster, program)
        d0 = block(cluster, program.n_rows)
        actual = ClusterEmulator(cluster, program).run(d0).total_seconds
        predicted = model.predict_seconds(d0)
        assert abs(predicted - actual) / actual < 0.03


class TestPrefetchingPipeline:
    def test_prefetch_predictions_track_prefetch_runs(self):
        cluster = config_io()
        program = JacobiApp.paper(scale=SCALE).prefetching().with_iterations(5)
        run = run_spectrum(cluster, program, steps_per_leg=2)
        assert run.mean_error_percent < 10.0


class TestSearchIntegration:
    def test_gbs_beats_blk_on_hy1(self):
        cluster = config_hy1()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(5)
        model = build_model(cluster, program)
        result = GeneralizedBinarySearch(model, cluster).search(budget=120)
        blk_pred = model.predict_seconds(block(cluster, program.n_rows))
        assert result.predicted_seconds <= blk_pred

    def test_search_winner_verified_by_emulator(self):
        """The distribution MHETA picks must actually run faster than
        Blk on the emulator — the whole point of the system."""
        cluster = config_dc()
        program = JacobiApp.paper(scale=SCALE).structure.with_iterations(5)
        model = build_model(cluster, program)
        result = GeneralizedBinarySearch(model, cluster).search(budget=120)
        emulator = ClusterEmulator(cluster, program)
        t_best = emulator.run(result.best).total_seconds
        t_blk = emulator.run(block(cluster, program.n_rows)).total_seconds
        assert t_best < t_blk


class TestSpreadShape:
    def test_dc_prefers_balanced_for_all_apps(self):
        cluster = config_dc()
        for app in paper_applications(SCALE):
            program = app.structure.with_iterations(3)
            run = run_spectrum(cluster, program, steps_per_leg=2)
            assert run.best_actual.label == "Bal", app.name

    def test_rna_dc_spread_is_large(self):
        cluster = config_dc()
        program = application_by_name(
            "rna", scale=SCALE
        ).structure.with_iterations(3)
        run = run_spectrum(cluster, program, steps_per_leg=2)
        assert run.spread > 2.0
