"""Golden equivalence and plan-cache contract for the batched 2-D kernel.

The 2-D analogue of ``test_kernel_equivalence.py`` + ``test_plan.py``:
the scalar reference loop, the vectorized numpy kernel, and the compiled
plan kernel must agree to <= 1e-12 relative on any valid ``GenBlock2D``,
across cluster configurations (including heterogeneous memory where some
tiles stream out-of-core); batched scoring must be bitwise equal to the
serial path; and compiled 2-D plans share the process-wide LRU exactly
like their 1-D siblings.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import baseline_cluster, config_dc
from repro.core import plan as planmod
from repro.core.plan import discard_plan, plan_cache_stats, reset_plan_cache
from repro.distribution import largest_remainder_round
from repro.exceptions import ModelError
from repro.instrument.collect import MeasurementConfig
from repro.obs import Recorder
from repro.sim import PerturbationConfig
from repro.twod import (
    GenBlock2D,
    Jacobi2DSpec,
    TwoDModel,
    block2d,
    build_2d_model,
    factor_pairs,
)
from repro.util.units import mib

IDEAL = PerturbationConfig.none()
PERFECT = MeasurementConfig.perfect()
REL_TOL = 1e-12

COMMON = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=30,
)


@pytest.fixture(autouse=True)
def _clean_plan_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


def _mixed_cluster():
    base = baseline_cluster()
    powers = [1.0, 0.5, 2.0, 1.0, 1.0, 1.5, 1.0, 1.0]
    memories = [96, 4, 96, 8, 96, 96, 4, 96]
    nodes = [
        n.with_(cpu_power=powers[i], memory_bytes=mib(memories[i]))
        for i, n in enumerate(base.nodes)
    ]
    return base.with_nodes(nodes, name="mixed2d")


CLUSTERS = {"mixed2d": _mixed_cluster, "DC": config_dc}

_MODEL_CACHE = {}


def _models(cluster_name="mixed2d"):
    """(scalar, numpy, plan) sibling models over identical inputs."""
    if cluster_name not in _MODEL_CACHE:
        cluster = CLUSTERS[cluster_name]()
        spec = Jacobi2DSpec(n_rows=512, n_cols=384, iterations=4)
        d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
        base = build_2d_model(
            cluster, spec, d0, perturbation=IDEAL, measurement=PERFECT
        )
        _MODEL_CACHE[cluster_name] = tuple(
            TwoDModel(cluster, spec, base.inputs, kernel=k)
            for k in ("scalar", "numpy", "plan")
        )
    scalar, numpy_m, plan = _MODEL_CACHE[cluster_name]
    # Plans may reference the (reset) process-wide LRU: start fresh.
    plan.release_plans()
    numpy_m.release_plans()
    return scalar, numpy_m, plan


def _dists(scalar, rng_seed=0, per_shape=3):
    rng = np.random.RandomState(rng_seed)
    spec = scalar.spec
    out = []
    for shape in factor_pairs(scalar.n_nodes):
        R, C = shape
        out.append(block2d(spec.n_rows, spec.n_cols, shape))
        for _ in range(per_shape - 1):
            rows = largest_remainder_round(
                rng.uniform(0.5, 2.0, size=R), spec.n_rows, minimum=1
            )
            cols = largest_remainder_round(
                rng.uniform(0.5, 2.0, size=C), spec.n_cols, minimum=1
            )
            out.append(GenBlock2D(rows, cols))
    return out


# -- golden equivalence -------------------------------------------------------


@pytest.mark.parametrize("cluster_name", sorted(CLUSTERS))
def test_three_kernels_agree(cluster_name):
    scalar, numpy_m, plan = _models(cluster_name)
    for d in _dists(scalar):
        want = scalar.predict(d)
        assert numpy_m.predict(d) == pytest.approx(want, rel=REL_TOL)
        assert plan.predict(d) == pytest.approx(want, rel=REL_TOL)


@COMMON
@given(
    shape_i=st.integers(0, 3),
    row_w=st.lists(
        st.floats(0.1, 10.0, allow_nan=False), min_size=8, max_size=8
    ),
    col_w=st.lists(
        st.floats(0.1, 10.0, allow_nan=False), min_size=8, max_size=8
    ),
)
def test_kernels_agree_on_generated_layouts(shape_i, row_w, col_w):
    scalar, numpy_m, plan = _models()
    spec = scalar.spec
    shapes = factor_pairs(scalar.n_nodes)
    R, C = shapes[shape_i % len(shapes)]
    d = GenBlock2D(
        largest_remainder_round(
            np.array(row_w[:R]), spec.n_rows, minimum=1
        ),
        largest_remainder_round(
            np.array(col_w[:C]), spec.n_cols, minimum=1
        ),
    )
    want = scalar.predict(d)
    assert numpy_m.predict(d) == pytest.approx(want, rel=REL_TOL)
    assert plan.predict(d) == pytest.approx(want, rel=REL_TOL)


def test_batch_is_bitwise_equal_to_serial():
    _, numpy_m, plan = _models()
    dists = _dists(numpy_m, rng_seed=1)
    for model in (numpy_m, plan):
        batched = model.predict(dists, batch=True)
        serial = model.predict(dists, batch="serial")
        assert isinstance(batched, np.ndarray)
        assert batched.tolist() == serial


def test_single_call_is_bitwise_equal_to_batch_row():
    _, _, plan = _models()
    dists = _dists(plan, rng_seed=2)
    batched = plan.predict(dists, batch=True)
    for d, want in zip(dists, batched):
        assert plan.predict(d) == want


def test_report_totals_match_prediction():
    scalar, _, plan = _models()
    d = block2d(scalar.spec.n_rows, scalar.spec.n_cols, (4, 2))
    for model in (scalar, plan):
        rep = model.predict(d, report=True)
        assert len(rep.nodes) == model.n_nodes
        worst = max(n.total_seconds for n in rep.nodes)
        assert rep.total_seconds == pytest.approx(worst, rel=REL_TOL)
        assert rep.total_seconds == pytest.approx(
            model.predict(d), rel=REL_TOL
        )


def test_iterations_override_changes_result():
    _, _, plan = _models()
    d = block2d(plan.spec.n_rows, plan.spec.n_cols, (2, 4))
    full = plan.predict(d)
    short = plan.predict(d, iterations=1)
    assert 0 < short < full


# -- plan cache ---------------------------------------------------------------


def test_equivalent_models_share_one_plan_per_shape():
    _, _, plan = _models()
    twin = TwoDModel(plan.cluster, plan.spec, plan.inputs, kernel="plan")
    assert twin.fingerprint == plan.fingerprint
    pa = plan.ensure_plan((2, 4))
    pb = twin.ensure_plan((2, 4))
    assert pa is pb
    stats = plan_cache_stats()
    assert stats["compiles"] == 1
    assert stats["hits"] == 1


def test_distinct_shapes_compile_distinct_plans():
    _, _, plan = _models()
    plans = {
        id(plan.ensure_plan(shape))
        for shape in factor_pairs(plan.n_nodes)
    }
    assert len(plans) == len(factor_pairs(plan.n_nodes))
    assert plan_cache_stats()["compiles"] == len(plans)
    # Shape-qualified fingerprints keep entries distinct in the LRU.
    fps = {plan.ensure_plan(s).fingerprint for s in factor_pairs(8)}
    assert len(fps) == len(plans)
    for fp in fps:
        assert ":2d:" in fp


def test_numpy_kernel_builds_private_plans():
    _, numpy_m, _ = _models()
    numpy_m.predict(
        [block2d(numpy_m.spec.n_rows, numpy_m.spec.n_cols, (2, 4))],
        batch=True,
    )
    assert plan_cache_stats()["size"] == 0  # nothing went process-wide


def test_release_plans_discards_cache_entries():
    _, _, plan = _models()
    plan.ensure_plan((2, 4))
    plan.ensure_plan((4, 2))
    assert plan_cache_stats()["size"] == 2
    plan.release_plans()
    assert plan._plans == {}
    assert plan_cache_stats()["size"] == 0
    plan.release_plans()  # releasing twice is a no-op
    assert not discard_plan("no-such-fingerprint")


def test_plan_results_survive_release_and_recompile():
    _, _, plan = _models()
    dists = _dists(plan, rng_seed=3)
    before = plan.predict(dists, batch=True)
    plan.release_plans()
    after = plan.predict(dists, batch=True)
    assert (before == after).all()


def test_pickled_model_drops_plans_and_recompiles():
    _, _, plan = _models()
    dists = _dists(plan, rng_seed=4)
    want = plan.predict(dists, batch=True)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone._plans == {}
    got = clone.predict(dists, batch=True)
    assert (want == got).all()


def test_matrix_memo_is_bounded():
    _, _, plan = _models()
    spec = plan.spec
    rng = np.random.RandomState(11)
    compiled = plan.ensure_plan((2, 4))
    seen = set()
    while len(seen) < 12:
        rows = tuple(
            largest_remainder_round(
                rng.uniform(0.5, 2.0, size=2), spec.n_rows, minimum=1
            )
        )
        cols = tuple(
            largest_remainder_round(
                rng.uniform(0.5, 2.0, size=4), spec.n_cols, minimum=1
            )
        )
        if (rows, cols) in seen:
            continue
        seen.add((rows, cols))
        plan.predict([GenBlock2D(rows, cols)], batch=True)
    assert len(compiled._m_memo) <= 8


def test_plan_stats_shape():
    _, _, plan = _models()
    plan.predict(
        _dists(plan, rng_seed=5, per_shape=1), batch=True
    )
    stats = plan.ensure_plan((2, 4)).stats
    assert stats["mode"] == "matrix2d"
    assert stats["grid_shape"] == (2, 4)
    assert stats["executes"] >= 1


# -- errors -------------------------------------------------------------------


def test_unknown_kernel_rejected():
    _, _, plan = _models()
    with pytest.raises(ModelError):
        TwoDModel(plan.cluster, plan.spec, plan.inputs, kernel="cuda")


def test_wrong_coverage_rejected():
    _, _, plan = _models()
    with pytest.raises(ModelError):
        plan.predict(block2d(plan.spec.n_rows, plan.spec.n_cols, (2, 2)))
    with pytest.raises(ModelError):
        plan.ensure_plan((3, 3))


def test_report_plus_batch_rejected():
    _, _, plan = _models()
    d = block2d(plan.spec.n_rows, plan.spec.n_cols, (2, 4))
    with pytest.raises(ModelError):
        plan.predict([d], batch=True, report=True)


# -- telemetry ----------------------------------------------------------------


def test_batch_telemetry_and_plan_gauges():
    _, _, plan = _models()
    rec = Recorder()
    dists = _dists(plan, rng_seed=6, per_shape=1)
    plan.predict(dists, batch=True, telemetry=rec)
    assert rec.counters["model/predictions"] == len(dists)
    assert rec.counters["model/batch_predictions"] == 1
    assert rec.gauges["model/plan_cache/size"] >= 1
    assert rec.gauges["model/plan_cache/compiles"] >= 1
    flat = str(rec.snapshot())
    assert "plan/compile" in flat


# -- numba gate ---------------------------------------------------------------


def test_numba_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_NUMBA", "0")
    planmod._reset_numba_for_tests()
    try:
        assert planmod._resolve_numba_walk() is None
        _, _, plan = _models()
        d = block2d(plan.spec.n_rows, plan.spec.n_cols, (2, 4))
        assert plan.predict(d) > 0
    finally:
        planmod._reset_numba_for_tests()


def test_numba_walk_matches_dense_fallback():
    """Whatever the environment, the plan kernel's answer must equal the
    pure-numpy walk's (when numba is present they share results; when
    absent this is trivially the same code path)."""
    planmod._reset_numba_for_tests()
    try:
        scalar, _, plan = _models()
        dists = _dists(plan, rng_seed=7, per_shape=2)
        out = plan.predict(dists, batch=True)
        want = np.array([scalar.predict(d) for d in dists])
        np.testing.assert_allclose(out, want, rtol=REL_TOL)
    finally:
        planmod._reset_numba_for_tests()
