"""Tests for the 2-D distribution extension (paper Section 5.1)."""

import pytest

from repro.cluster import baseline_cluster
from repro.exceptions import DistributionError, SimulationError
from repro.instrument.collect import MeasurementConfig
from repro.sim import PerturbationConfig
from repro.twod import (
    GenBlock2D,
    Jacobi2DSpec,
    TwoDEmulator,
    balanced2d,
    block2d,
    build_2d_model,
    factor_pairs,
    search_space_growth,
)
from repro.twod.search_space import one_d_candidates, two_d_candidates
from repro.util.units import mib

IDEAL = PerturbationConfig.none()
PERFECT = MeasurementConfig.perfect()


@pytest.fixture
def cluster2d():
    base = baseline_cluster()
    powers = [1.0, 0.5, 2.0, 1.0, 1.0, 1.5, 1.0, 1.0]
    memories = [96, 4, 96, 8, 96, 96, 4, 96]
    nodes = [
        n.with_(cpu_power=powers[i], memory_bytes=mib(memories[i]))
        for i, n in enumerate(base.nodes)
    ]
    return base.with_nodes(nodes, name="mixed2d")


class TestGenBlock2D:
    def test_grid_structure(self):
        d = GenBlock2D([10, 20], [5, 5, 10])
        assert d.grid_shape == (2, 3)
        assert d.n_nodes == 6
        assert d.n_rows == 30
        assert d.n_cols == 20

    def test_rank_coords_roundtrip(self):
        d = GenBlock2D([1, 1, 1], [1, 1])
        for rank in range(6):
            i, j = d.coords(rank)
            assert d.rank(i, j) == rank

    def test_tile_sizes(self):
        d = GenBlock2D([10, 20], [5, 15])
        assert d.tile(0) == (10, 5)
        assert d.tile(3) == (20, 15)
        assert d.tile_elements(3) == 300

    def test_neighbors_interior_and_corner(self):
        d = GenBlock2D([1, 1, 1], [1, 1, 1])  # 3x3
        centre = d.rank(1, 1)
        assert len(d.neighbors(centre)) == 4
        corner = d.rank(0, 0)
        directions = {direction for direction, _ in d.neighbors(corner)}
        assert directions == {"south", "east"}

    def test_halo_sizes(self):
        d = GenBlock2D([10, 20], [5, 15])
        assert d.halo_elements(0, "south") == 5  # a row of the tile
        assert d.halo_elements(0, "east") == 10  # a column of the tile

    def test_invalid_construction(self):
        with pytest.raises(DistributionError):
            GenBlock2D([], [1])
        with pytest.raises(DistributionError):
            GenBlock2D([-1], [1])

    def test_out_of_range_rank(self):
        d = GenBlock2D([1], [1])
        with pytest.raises(DistributionError):
            d.coords(1)


class TestFactories:
    def test_factor_pairs(self):
        assert factor_pairs(8) == [(1, 8), (2, 4), (4, 2), (8, 1)]
        assert factor_pairs(7) == [(1, 7), (7, 1)]

    def test_block2d_even(self):
        d = block2d(100, 200, (2, 4))
        assert set(d.row_counts) == {50}
        assert set(d.col_counts) == {50}

    def test_balanced2d_follows_powers(self, cluster2d):
        d = balanced2d(cluster2d, 1000, 1000, (2, 4))
        # Grid row 1 holds nodes 4-7 (total power 4.5) vs row 0 (4.5):
        # equal, so bands are even; columns follow column power sums.
        assert d.n_rows == 1000 and d.n_cols == 1000
        powers = cluster2d.cpu_powers.reshape(2, 4)
        col_weights = powers.sum(axis=0)
        heaviest = int(col_weights.argmax())
        assert d.col_counts[heaviest] == max(d.col_counts)

    def test_balanced2d_wrong_grid_raises(self, cluster2d):
        with pytest.raises(DistributionError):
            balanced2d(cluster2d, 100, 100, (3, 3))


class TestTwoDExactness:
    @pytest.mark.parametrize("shape", [(2, 4), (4, 2), (8, 1), (1, 8)])
    def test_model_matches_emulator(self, cluster2d, shape):
        spec = Jacobi2DSpec(n_rows=1024, n_cols=1024, iterations=3)
        d0 = block2d(spec.n_rows, spec.n_cols, shape)
        model = build_2d_model(
            cluster2d, spec, d0, perturbation=IDEAL, measurement=PERFECT
        )
        emulator = TwoDEmulator(cluster2d, spec, IDEAL)
        for dist in (
            d0,
            balanced2d(cluster2d, spec.n_rows, spec.n_cols, shape),
        ):
            actual = emulator.run(dist)
            assert model.predict(dist) == pytest.approx(actual, rel=1e-9)

    def test_cross_distribution_prediction(self, cluster2d):
        spec = Jacobi2DSpec(n_rows=1024, n_cols=1024, iterations=3)
        d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
        target = GenBlock2D([700, 324], [200, 300, 400, 124])
        model = build_2d_model(
            cluster2d, spec, d0, perturbation=IDEAL, measurement=PERFECT
        )
        actual = TwoDEmulator(cluster2d, spec, IDEAL).run(target)
        assert model.predict(target) == pytest.approx(actual, rel=1e-9)

    def test_out_of_core_tiles_stream(self, cluster2d):
        # Node 1 has 4 MiB; a 2048x512 tile of doubles is 8 MiB.
        spec = Jacobi2DSpec(n_rows=4096, n_cols=2048, iterations=2)
        d = block2d(spec.n_rows, spec.n_cols, (2, 4))
        small = TwoDEmulator(cluster2d, spec, IDEAL).run(d)
        roomy_cluster = cluster2d.with_nodes(
            [n.with_(memory_bytes=mib(512)) for n in cluster2d.nodes]
        )
        roomy = TwoDEmulator(roomy_cluster, spec, IDEAL).run(d)
        assert small > roomy  # streaming costs extra

    def test_accuracy_with_perturbations(self, cluster2d):
        spec = Jacobi2DSpec(n_rows=1024, n_cols=1024, iterations=5)
        d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
        model = build_2d_model(cluster2d, spec, d0)
        emulator = TwoDEmulator(cluster2d, spec)
        actual = emulator.run(d0)
        predicted = model.predict(d0)
        assert abs(predicted - actual) / actual < 0.10

    def test_wrong_coverage_raises(self, cluster2d):
        spec = Jacobi2DSpec(n_rows=1024, n_cols=1024, iterations=2)
        emulator = TwoDEmulator(cluster2d, spec, IDEAL)
        with pytest.raises(SimulationError):
            emulator.run(block2d(512, 1024, (2, 4)))
        with pytest.raises(SimulationError):
            emulator.run(block2d(1024, 1024, (2, 2)))


class TestTwoDBeatsOneD:
    def test_square_decomposition_cuts_halo_traffic(self):
        """The reason 2-D decomposition exists: on a homogeneous cluster
        a 2x4 grid exchanges less halo data than 1x8 strips, so a
        communication-heavy stencil runs faster."""
        cluster = baseline_cluster(name="homog2d")
        # Tiny per-element work and a slow network make halos dominate.
        slow_net = cluster.network.with_(latency_per_byte=2e-7)
        from repro.cluster import ClusterSpec

        cluster = ClusterSpec(
            name=cluster.name, nodes=cluster.nodes, network=slow_net
        )
        spec = Jacobi2DSpec(
            n_rows=2048, n_cols=2048, iterations=4, work_per_element=2e-9
        )
        emulator = TwoDEmulator(cluster, spec, IDEAL)
        strips = emulator.run(block2d(spec.n_rows, spec.n_cols, (8, 1)))
        grid = emulator.run(block2d(spec.n_rows, spec.n_cols, (2, 4)))
        assert grid < strips


class TestSearchSpace:
    def test_one_d_counts_are_compositions(self):
        # 8 units into 8 nodes: exactly one layout.
        assert one_d_candidates(8, 8) == 1
        # 16 units into 8 nodes: C(15, 7).
        assert one_d_candidates(8, 16) == 6435
        assert one_d_candidates(8, 4) == 0  # infeasible

    def test_two_d_always_larger(self):
        for g in (8, 16, 32):
            assert two_d_candidates(8, g) > one_d_candidates(8, g)

    def test_comparison_table(self):
        comparison = search_space_growth(granularities=(8, 16))
        assert comparison.worst_blowup > 100  # at natural granularity
        text = comparison.describe()
        assert "blow-up" in text
        assert "exhaustive" in text


class TestTwoDSearch:
    @pytest.fixture
    def model(self, cluster2d):
        spec = Jacobi2DSpec(n_rows=512, n_cols=512, iterations=3)
        d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
        return build_2d_model(
            cluster2d, spec, d0, perturbation=IDEAL, measurement=PERFECT
        )

    def test_search_beats_even_split(self, model):
        from repro.twod import TwoDGbs

        spec = model.spec
        result = TwoDGbs(model).search(budget=600)
        even = model.predict(block2d(spec.n_rows, spec.n_cols, (2, 4)))
        assert result.predicted_seconds < even
        assert result.best.n_rows == spec.n_rows
        assert result.best.n_cols == spec.n_cols

    def test_search_result_verified_by_emulator(self, cluster2d, model):
        from repro.twod import TwoDGbs

        result = TwoDGbs(model).search(budget=600)
        actual = TwoDEmulator(cluster2d, model.spec, IDEAL).run(result.best)
        assert actual == pytest.approx(result.predicted_seconds, rel=1e-9)

    def test_budget_respected_on_genuine_shapes(self, model):
        from repro.twod import TwoDGbs

        # Degenerate strip shapes ride the 1-D spectrum path outside
        # the move budget, so cap the check to genuinely 2-D shapes.
        result = TwoDGbs(model, shapes=[(2, 4), (4, 2)]).search(budget=30)
        assert result.evaluations <= 30

    def test_per_shape_reported(self, model):
        from repro.twod import TwoDGbs

        result = TwoDGbs(model).search(budget=600)
        assert set(result.per_shape) == set(factor_pairs(model.n_nodes))
        assert "grid" in str(result)

    def test_bad_budget_raises(self, model):
        from repro.exceptions import SearchError
        from repro.twod import TwoDGbs

        with pytest.raises(SearchError):
            TwoDGbs(model).search(budget=0)

    def test_unknown_family_raises(self, model):
        from repro.exceptions import SearchError
        from repro.twod import TwoDLayoutSearch

        with pytest.raises(SearchError):
            TwoDLayoutSearch(model, algorithm="bogo")

    def test_strips_match_direct_scoring(self, model):
        from repro.twod import is_degenerate, strip_candidates

        assert is_degenerate((1, 8)) and is_degenerate((8, 1))
        assert not is_degenerate((2, 4))
        for shape in ((8, 1), (1, 8)):
            candidates = strip_candidates(model, shape)
            assert candidates, shape
            for d in candidates:
                assert d.grid_shape == shape
            batched = model.predict(candidates, batch=True)
            for d, v in zip(candidates, batched):
                assert v == model.predict(d)

    @pytest.mark.parametrize(
        "algorithm", ["gbs", "genetic", "annealing", "random", "sweep"]
    )
    def test_all_families_run(self, model, algorithm):
        from repro.twod import TwoDLayoutSearch

        result = TwoDLayoutSearch(model, algorithm=algorithm).search(
            budget=120
        )
        assert result.algorithm == f"twod-{algorithm}"
        assert result.best.n_rows == model.spec.n_rows
        assert result.best.n_cols == model.spec.n_cols
        assert set(result.per_shape) == set(factor_pairs(model.n_nodes))
        # Every family must at least match the strip path's best (the
        # strips are scored outside the family's own search).
        strips_best = min(
            v
            for s, v in result.per_shape.items()
            if s[0] == 1 or s[1] == 1
        )
        assert result.predicted_seconds <= strips_best

    def test_adapter_roundtrip_and_repair(self, model):
        from repro.distribution.genblock import GenBlock
        from repro.twod.search2d import _ShapeAdapter

        adapter = _ShapeAdapter(model, (2, 4))
        d = block2d(model.spec.n_rows, model.spec.n_cols, (2, 4))
        joint = adapter.encode(d)
        assert adapter.decode(joint) == d
        # Any joint vector decodes to a valid layout of the same shape.
        mangled = GenBlock([1, 1000, 3, 3, 3, 3])
        repaired = adapter.decode(mangled)
        assert repaired.grid_shape == (2, 4)
        assert repaired.n_rows == model.spec.n_rows
        assert repaired.n_cols == model.spec.n_cols
        assert min(repaired.row_counts) >= 1
        assert min(repaired.col_counts) >= 1

    def test_search_telemetry(self, model):
        from repro.obs import Recorder
        from repro.twod import TwoDGbs

        rec = Recorder()
        TwoDGbs(model).search(budget=200, telemetry=rec)
        assert rec.counters["search/runs"] >= 1
        assert rec.counters["search/evaluations"] > 0
        assert any(
            name.startswith("span/search/twod") for name in rec.series
        )

    def test_jobs_do_not_change_answer(self, model):
        from repro.twod import TwoDGbs

        serial = TwoDGbs(model, shapes=[(2, 4)]).search(budget=150)
        sharded = TwoDGbs(model, shapes=[(2, 4)], jobs=2).search(budget=150)
        assert sharded.predicted_seconds == serial.predicted_seconds
        assert sharded.best == serial.best


class TestTwoDFastForward:
    """2-D emulator fast-forward: golden equivalence + 1-D gating rules."""

    SHAPES = {8: [(2, 4), (4, 2), (8, 1), (1, 8)]}

    def _spec(self):
        return Jacobi2DSpec(n_rows=400, n_cols=400, iterations=24)

    @pytest.mark.parametrize("config", ["DC", "IO", "HY1", "HY2"])
    @pytest.mark.parametrize("shape", [(2, 4), (4, 2), (8, 1), (1, 8)])
    @pytest.mark.parametrize("factory", ["block", "balanced"])
    def test_golden_equivalence(self, config, shape, factory):
        from repro.cluster import table1_configs
        from repro.obs import Recorder

        cluster = table1_configs()[config]
        spec = self._spec()
        deterministic = PerturbationConfig().without(compute_noise=False)
        dist = (
            block2d(spec.n_rows, spec.n_cols, shape)
            if factory == "block"
            else balanced2d(cluster, spec.n_rows, spec.n_cols, shape)
        )
        emulator = TwoDEmulator(cluster, spec, deterministic)
        full = emulator.run(dist, fast_forward=False)
        rec = Recorder()
        fast = emulator.run(dist, fast_forward=True, telemetry=rec)
        assert rec.counters["sim/twod/fast_forwards"] == 1
        assert abs(fast - full) / abs(full) <= 1e-9

    def test_perturbed_run_bypasses_bitwise(self):
        from repro.cluster import table1_configs

        cluster = table1_configs()["HY1"]
        spec = self._spec()
        dist = block2d(spec.n_rows, spec.n_cols, (2, 4))
        emulator = TwoDEmulator(cluster, spec, PerturbationConfig())
        full = emulator.run(dist, fast_forward=False)
        fast = emulator.run(dist, fast_forward=True)
        assert fast == full

    def test_short_run_and_collector_bypass(self):
        from repro.cluster import table1_configs
        from repro.obs import Recorder
        from repro.util.rng import stream

        cluster = table1_configs()["HY1"]
        spec = self._spec()
        deterministic = PerturbationConfig().without(compute_noise=False)
        dist = block2d(spec.n_rows, spec.n_cols, (2, 4))
        emulator = TwoDEmulator(cluster, spec, deterministic)
        rec = Recorder()
        # Too few iterations for the probe window.
        emulator.run(dist, iterations=3, fast_forward=True, telemetry=rec)
        assert "sim/twod/fast_forwards" not in rec.counters
        # A collector is an observer: it must see every iteration.
        from repro.twod.jacobi2d import _TwoDCollector

        collector = _TwoDCollector(PERFECT, stream("t2dff", 0))
        rec2 = Recorder()
        emulator.run(
            dist, fast_forward=True, collector=collector, telemetry=rec2
        )
        assert "sim/twod/fast_forwards" not in rec2.counters

    def test_respects_global_default(self):
        from repro.cluster import table1_configs
        from repro.obs import Recorder
        from repro.sim import set_fast_forward_default

        cluster = table1_configs()["HY1"]
        spec = self._spec()
        deterministic = PerturbationConfig().without(compute_noise=False)
        dist = block2d(spec.n_rows, spec.n_cols, (2, 4))
        emulator = TwoDEmulator(cluster, spec, deterministic)
        set_fast_forward_default(False)
        try:
            rec = Recorder()
            emulator.run(dist, telemetry=rec)
            assert "sim/twod/fast_forwards" not in rec.counters
        finally:
            set_fast_forward_default(True)
        rec2 = Recorder()
        emulator.run(dist, telemetry=rec2)
        assert rec2.counters["sim/twod/fast_forwards"] == 1
