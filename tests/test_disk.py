"""Unit tests for the disk + page-cache model."""

import pytest

from repro.cluster.node import NodeSpec
from repro.exceptions import SimulationError
from repro.sim.disk import DiskModel
from repro.util.units import mib


def make_node(**kw):
    defaults = dict(
        name="n",
        disk_read_seek=0.01,
        disk_write_seek=0.02,
        disk_read_bw=100e6,
        disk_write_bw=50e6,
        os_cache_bytes=mib(32),
    )
    defaults.update(kw)
    return NodeSpec(**defaults)


class TestColdReads:
    def test_read_is_seek_plus_transfer(self):
        disk = DiskModel(make_node(), cache_enabled=False)
        op = disk.submit_read(0.0, "v", 100e6)
        assert op.done - op.start == pytest.approx(0.01 + 1.0)
        assert op.cached_fraction == 0.0

    def test_write_is_seek_plus_transfer(self):
        disk = DiskModel(make_node())
        op = disk.submit_write(0.0, "v", 50e6)
        assert op.done - op.start == pytest.approx(0.02 + 1.0)

    def test_serial_device_queues(self):
        disk = DiskModel(make_node(), cache_enabled=False)
        first = disk.submit_read(0.0, "v", 100e6)
        second = disk.submit_read(0.0, "v", 100e6)
        assert second.start == pytest.approx(first.done)

    def test_idle_gap_not_charged(self):
        disk = DiskModel(make_node(), cache_enabled=False)
        disk.submit_read(0.0, "v", 100e6)
        late = disk.submit_read(100.0, "v", 100e6)
        assert late.start == pytest.approx(100.0)


class TestCacheWarming:
    def test_first_pass_is_cold(self):
        disk = DiskModel(make_node())
        disk.register_variable("v", mib(16))
        op = disk.submit_read(0.0, "v", mib(16))
        assert op.cached_fraction == 0.0

    def test_second_pass_hits(self):
        disk = DiskModel(make_node())
        disk.register_variable("v", mib(16))
        disk.submit_read(0.0, "v", mib(16))  # full first pass
        warm = disk.submit_read(100.0, "v", mib(16))
        assert warm.cached_fraction > 0.0

    def test_warm_read_is_faster(self):
        disk = DiskModel(make_node())
        disk.register_variable("v", mib(16))
        cold = disk.submit_read(0.0, "v", mib(16))
        warm = disk.submit_read(100.0, "v", mib(16))
        assert (warm.done - warm.start) < (cold.done - cold.start)

    def test_partial_pass_does_not_warm(self):
        disk = DiskModel(make_node())
        disk.register_variable("v", mib(16))
        disk.submit_read(0.0, "v", mib(8))  # half a pass
        op = disk.submit_read(1.0, "v", mib(4))
        assert op.cached_fraction == 0.0

    def test_hit_fraction_shrinks_with_ocla(self):
        node = make_node()
        big = DiskModel(node)
        big.register_variable("v", mib(256))
        small = DiskModel(node)
        small.register_variable("v", mib(16))
        for disk, size in ((big, mib(256)), (small, mib(16))):
            disk.submit_read(0.0, "v", size)  # warm up
        assert small.hit_fraction("v") > big.hit_fraction("v")

    def test_resident_bytes_shrink_cache(self):
        node = make_node()
        free = DiskModel(node, resident_bytes=0.0)
        squeezed = DiskModel(node, resident_bytes=mib(24))
        for disk in (free, squeezed):
            disk.register_variable("v", mib(32))
            disk.submit_read(0.0, "v", mib(32))
        assert squeezed.hit_fraction("v") < free.hit_fraction("v")

    def test_cache_disabled_never_hits(self):
        disk = DiskModel(make_node(), cache_enabled=False)
        disk.register_variable("v", mib(8))
        disk.submit_read(0.0, "v", mib(8))
        assert disk.hit_fraction("v") == 0.0

    def test_cache_shared_among_variables(self):
        disk = DiskModel(make_node())
        disk.register_variable("a", mib(16))
        disk.register_variable("b", mib(16))
        assert disk.cache_share("a") == pytest.approx(disk.cache_share("b"))
        assert disk.cache_share("a") <= mib(32) / 2 + 1

    def test_hit_fraction_capped_by_effectiveness(self):
        disk = DiskModel(make_node())
        disk.register_variable("v", mib(1))  # tiny: fully cacheable
        disk.submit_read(0.0, "v", mib(1))
        assert disk.hit_fraction("v") <= DiskModel.EFFECTIVENESS + 1e-12

    def test_unregistered_variable_auto_registers(self):
        disk = DiskModel(make_node())
        disk.submit_read(0.0, "new", mib(4))
        assert disk.hit_fraction("new") >= 0.0  # no crash

    def test_negative_ocla_raises(self):
        disk = DiskModel(make_node())
        with pytest.raises(SimulationError):
            disk.register_variable("v", -1.0)

    def test_writes_never_cached(self):
        disk = DiskModel(make_node())
        disk.register_variable("v", mib(8))
        disk.submit_read(0.0, "v", mib(8))
        w1 = disk.submit_write(10.0, "v", mib(8))
        w2 = disk.submit_write(20.0, "v", mib(8))
        assert (w1.done - w1.start) == pytest.approx(w2.done - w2.start)
        assert w1.cached_fraction == 0.0
