"""Golden suite for batched, plan-compiled emulation.

``emulate_many`` must be an *invisible* amortisation: for every seed
application x cluster combination, sync and prefetching, its results
are bit-identical to looping ``emulate`` — same totals, same per-node
finish times, same iteration ends, same fast-forward flags.  Runs the
compiled :class:`EmulationPlan` cannot honestly serve (perturbed,
non-converging, short) must fall back per candidate to the exact
engine path, and the run cache must interact with batches exactly as
with single runs.  Plus the engine regression pin: a non-traced run
allocates zero ``EventRecord`` objects.
"""

import numpy as np
import pytest

import repro.sim.executor as executor_mod
import repro.sim.plan_sim as plan_sim
from repro.apps import (
    ConjugateGradientApp,
    JacobiApp,
    LanczosApp,
    MultigridApp,
    RnaPipelineApp,
)
from repro.cluster import table1_configs
from repro.distribution import GenBlock, block
from repro.obs import Recorder
from repro.parallel.cache import RunCache
from repro.sim import PerturbationConfig, emulate, emulate_many

SCALE = 0.05
ITERATIONS = 16  # > probe window (default policy simulates 7)
APPS = {
    "jacobi": JacobiApp,
    "cg": ConjugateGradientApp,
    "lanczos": LanczosApp,
    "rna": RnaPipelineApp,
    "multigrid": MultigridApp,
}

DETERMINISTIC = PerturbationConfig().without(compute_noise=False)


def _population(cluster, program, n=6, seed=0):
    """The block anchor plus ``n - 1`` random GEN_BLOCK layouts."""
    rng = np.random.default_rng(seed)
    P = len(cluster.nodes)
    dists = [block(cluster, program.n_rows)]
    for _ in range(n - 1):
        w = rng.random(P) + 0.3
        counts = np.floor(w / w.sum() * program.n_rows).astype(int)
        counts[0] += program.n_rows - counts.sum()
        dists.append(GenBlock(tuple(int(c) for c in counts)))
    return dists


def _assert_bitwise(batch, loop):
    assert len(batch) == len(loop)
    for b, l in zip(batch, loop):
        assert b.total_seconds == l.total_seconds
        assert tuple(b.per_node_seconds) == tuple(l.per_node_seconds)
        assert [list(e) for e in b.iteration_ends] == [
            list(e) for e in l.iteration_ends
        ]
        assert b.fast_forwarded == l.fast_forwarded
        assert tuple(b.distribution.counts) == tuple(l.distribution.counts)


class TestGoldenBatchEquivalence:
    """emulate_many == looped emulate, bit for bit, over the seed grid."""

    @pytest.mark.parametrize("config", ["DC", "IO", "HY1", "HY2"])
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("io_mode", ["sync", "prefetch"])
    def test_matches_looped_emulate(self, config, app, io_mode):
        cluster = table1_configs()[config]
        application = APPS[app].paper(SCALE)
        program = (
            application.prefetching()
            if io_mode == "prefetch"
            else application.structure
        ).with_iterations(ITERATIONS)
        dists = _population(cluster, program, n=4)
        batch = emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, cache=False,
        )
        loop = [
            emulate(
                cluster, program, d,
                perturbation=DETERMINISTIC, cache=False,
            )
            for d in dists
        ]
        _assert_bitwise(batch, loop)
        assert all(b.fast_forwarded for b in batch), (
            "the plan path should engage on this grid"
        )

    def test_duplicates_deduplicated_not_aliased(self):
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        d = block(cluster, program.n_rows)
        batch = emulate_many(
            cluster, program, [d, d, d],
            perturbation=DETERMINISTIC, cache=False,
        )
        assert (
            batch[0].total_seconds
            == batch[1].total_seconds
            == batch[2].total_seconds
        )
        # Distinct result objects: mutating one must not leak.
        batch[0].per_node_seconds[0] = -1.0
        assert batch[1].per_node_seconds[0] != -1.0

    def test_empty_population(self):
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        assert emulate_many(cluster, program, [], cache=False) == []


class TestBatchFallbacks:
    """Candidates the plan cannot serve fall back to the engine path."""

    def _cluster_program(self):
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        return cluster, program

    def test_perturbed_batch_is_engine_bitwise(self):
        cluster, program = self._cluster_program()
        dists = _population(cluster, program, n=3)
        batch = emulate_many(
            cluster, program, dists,
            perturbation=PerturbationConfig(), cache=False,
        )
        loop = [
            emulate(
                cluster, program, d,
                perturbation=PerturbationConfig(), cache=False,
            )
            for d in dists
        ]
        _assert_bitwise(batch, loop)
        assert not any(b.fast_forwarded for b in batch)

    def test_short_run_never_fast_forwards(self):
        cluster, program = self._cluster_program()
        dists = _population(cluster, program, n=2)
        batch = emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, iterations=3, cache=False,
        )
        loop = [
            emulate(
                cluster, program, d,
                perturbation=DETERMINISTIC, iterations=3, cache=False,
            )
            for d in dists
        ]
        _assert_bitwise(batch, loop)
        assert not any(b.fast_forwarded for b in batch)

    def test_non_converging_probe_falls_back(self, monkeypatch):
        cluster, program = self._cluster_program()
        dists = _population(cluster, program, n=2)
        monkeypatch.setattr(
            executor_mod, "steady_deltas", lambda ends, policy: None
        )
        batch = emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, cache=False,
        )
        assert not any(b.fast_forwarded for b in batch)
        full = [
            emulate(
                cluster, program, d, perturbation=DETERMINISTIC,
                fast_forward=False, cache=False,
            )
            for d in dists
        ]
        _assert_bitwise(batch, full)

    def test_dead_plan_serves_batches_through_the_engine(self):
        cluster, program = self._cluster_program()
        plan = plan_sim.get_emulation_plan(
            cluster, program, DETERMINISTIC, None
        )
        assert plan is not None
        original = plan.dead
        try:
            plan.dead = "forced dead for test"
            dists = _population(cluster, program, n=2)
            batch = emulate_many(
                cluster, program, dists,
                perturbation=DETERMINISTIC, cache=False,
            )
            loop = [
                emulate(
                    cluster, program, d,
                    perturbation=DETERMINISTIC, cache=False,
                )
                for d in dists
            ]
            _assert_bitwise(batch, loop)
        finally:
            plan.dead = original


class TestBatchCacheInteraction:
    def _cluster_program(self):
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        return cluster, program

    def test_batch_fills_and_hits_the_cache(self):
        cluster, program = self._cluster_program()
        dists = _population(cluster, program, n=4)
        store = RunCache()
        first = emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, cache=store,
        )
        assert len(store) == len(dists)
        rec = Recorder()
        second = emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, cache=store, telemetry=rec,
        )
        _assert_bitwise(second, first)
        counters = rec.snapshot()["counters"]
        assert counters["sim/batch/cache_hits"] == len(dists)
        assert counters["sim/batch/passes"] == 1

    def test_batch_results_seed_single_emulate(self):
        cluster, program = self._cluster_program()
        dists = _population(cluster, program, n=3)
        store = RunCache()
        batch = emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, cache=store,
        )
        for d, expected in zip(dists, batch):
            single = emulate(
                cluster, program, d,
                perturbation=DETERMINISTIC, cache=store,
            )
            assert single.total_seconds == expected.total_seconds

    def test_one_pass_per_call_counter(self):
        cluster, program = self._cluster_program()
        dists = _population(cluster, program, n=5)
        rec = Recorder()
        emulate_many(
            cluster, program, dists,
            perturbation=DETERMINISTIC, cache=False, telemetry=rec,
        )
        counters = rec.snapshot()["counters"]
        assert counters["sim/batch/passes"] == 1
        assert counters["sim/batch/candidates"] == len(dists)
        assert counters["sim/batch/plan_runs"] == len(dists)
        assert counters.get("sim/batch/fallbacks", 0) == 0


class TestEventRecordAllocationPin:
    """Non-traced runs must never construct EventRecord objects."""

    def test_untraced_run_allocates_zero_records(self, monkeypatch):
        constructed = []
        real = executor_mod.EventRecord

        def counting(*args, **kwargs):
            constructed.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(executor_mod, "EventRecord", counting)
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        d = block(cluster, program.n_rows)
        emulate(
            cluster, program, d,
            perturbation=DETERMINISTIC, fast_forward=False, cache=False,
        )
        emulate_many(
            cluster, program, [d],
            perturbation=DETERMINISTIC, cache=False,
        )
        assert constructed == []
