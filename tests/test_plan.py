"""Compiled evaluation plans: the specializer, its cache, its contract.

``repro.core.plan`` lowers an (app structure, cluster shape, kernel
options) triple once into a flat :class:`EvaluationPlan`; predictions
then run as a short sequence of vectorized ops.  These tests pin the
behaviours around the kernel itself (the golden numerical contract
lives in ``test_kernel_equivalence.py`` / ``test_batch_equivalence.py``):
plan sharing through the process-wide LRU, compile telemetry, the
gather memo, store resets, pickling, and the numba opt-in gate.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.apps import ConjugateGradientApp, JacobiApp, RnaPipelineApp
from repro.cluster import configs
from repro.core import plan as planmod
from repro.core.model import MhetaModel
from repro.core.plan import discard_plan, plan_cache_stats, reset_plan_cache
from repro.distribution import (
    GenBlock,
    block,
    largest_remainder_round,
    spectrum,
)
from repro.instrument.collect import collect_inputs
from repro.obs import Recorder

SCALE = 0.05


@pytest.fixture(autouse=True)
def _clean_plan_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


def _setup(app=JacobiApp, config=configs.config_hy1, steps_per_leg=3):
    """(plan-kernel model, candidate distributions) for one triple."""
    cluster = config()
    program = app.paper(SCALE).structure
    inputs = collect_inputs(cluster, program, block(cluster, program.n_rows))
    model = MhetaModel(program, cluster, inputs, kernel="plan")
    cands = [block(cluster, program.n_rows)]
    cands += [
        p.distribution
        for p in spectrum(cluster, program, steps_per_leg=steps_per_leg)
    ]
    return model, cands


def _model(app=JacobiApp, config=configs.config_hy1):
    return _setup(app, config)[0]


# -- plan cache ---------------------------------------------------------------


def test_equivalent_models_share_one_plan():
    """Two models with the same (structure, cluster) fingerprint hit
    the same compiled plan: exactly one compile."""
    a = _model()
    b = _model()
    assert a.fingerprint == b.fingerprint
    pa = a.ensure_plan()
    pb = b.ensure_plan()
    assert pa is pb
    stats = plan_cache_stats()
    assert stats["compiles"] == 1
    assert stats["hits"] == 1
    assert stats["compile_seconds"] > 0.0


def test_distinct_triples_compile_distinct_plans():
    a = _model(JacobiApp, configs.config_hy1)
    b = _model(JacobiApp, configs.config_dc)
    c = _model(ConjugateGradientApp, configs.config_hy1)
    plans = {id(m.ensure_plan()) for m in (a, b, c)}
    assert len(plans) == 3
    assert plan_cache_stats()["compiles"] == 3


def test_release_plan_discards_cache_entry():
    model = _model()
    model.ensure_plan()
    assert plan_cache_stats()["size"] == 1
    model.release_plan()
    assert model._plan is None
    assert plan_cache_stats()["size"] == 0
    # Releasing twice is a no-op, and discard of a gone key reports it.
    model.release_plan()
    assert not discard_plan("no-such-fingerprint")


def test_plan_results_survive_release_and_recompile():
    model, cands = _setup()
    before = model.predict(cands, batch=True)
    model.release_plan()
    after = model.predict(cands, batch=True)
    assert (before == after).all()
    assert plan_cache_stats()["compiles"] == 2


def test_pickled_model_drops_plan_and_recompiles():
    model, cands = _setup()
    want = model.predict(cands, batch=True)
    clone = pickle.loads(pickle.dumps(model))
    assert clone._plan is None
    got = clone.predict(cands, batch=True)
    assert (want == got).all()


# -- execution behaviours -----------------------------------------------------


def test_single_call_is_bitwise_equal_to_batch_row():
    model, cands = _setup(RnaPipelineApp)
    batch = model.predict(cands, batch=True)
    for d, want in zip(cands, batch):
        assert model.predict(d) == want


def test_repeated_batches_are_bitwise_stable():
    """The gather memo returns identical rows for a repeated
    population — results are bit-for-bit stable across calls."""
    model, cands = _setup()
    a = model.predict(cands, batch=True)
    b = model.predict(cands, batch=True)
    assert (a == b).all()
    plan = model.ensure_plan()
    assert plan._g_memo  # the repeated batch went through the memo


def test_gather_memo_is_bounded():
    model, cands = _setup()
    plan = model.ensure_plan()
    n_rows = sum(cands[0].counts)
    width = len(cands[0].counts)
    rng = np.random.RandomState(7)
    seen = set()
    while len(seen) < 12:
        counts = largest_remainder_round(
            rng.uniform(0.5, 2.0, size=width), n_rows, minimum=1
        )
        if tuple(counts) in seen:
            continue
        seen.add(tuple(counts))
        model.predict([GenBlock(counts)], batch=True)
    assert len(plan._g_memo) <= 8


def test_iterations_override_changes_result():
    model, cands = _setup()
    d = cands[0]
    full = model.predict(d)
    short = model.predict(d, iterations=3)
    assert 0 < short < full


def test_plan_stats_shape():
    model, cands = _setup()
    model.predict(cands, batch=True)
    stats = model.ensure_plan().stats
    assert stats["mode"] in ("matrix", "ops")
    assert stats["executes"] >= 1
    assert stats["store_rows"] > 0
    assert stats["store_resets"] == 0


def test_ops_mode_apps_compile_and_run():
    """Multi-op structures (collective chains, pipelines) lower to the
    generic ops walk rather than a single matrix."""
    model, cands = _setup(RnaPipelineApp)
    plan = model.ensure_plan()
    assert plan.stats["mode"] == "ops"
    out = model.predict(cands, batch=True)
    assert (out > 0).all()


def test_store_reset_keeps_results(monkeypatch):
    """Overflowing MAX_STORE_ROWS resets the store; warmth is lost but
    results are unchanged."""
    monkeypatch.setattr(planmod, "MAX_STORE_ROWS", 32)
    model, cands = _setup(steps_per_leg=4)
    first = model.predict(cands, batch=True)
    again = model.predict(cands, batch=True)
    assert (first == again).all()
    plan = model.ensure_plan()
    assert plan.stats["store_resets"] >= 1


# -- telemetry ----------------------------------------------------------------


def test_compile_span_and_counters_recorded():
    model, cands = _setup()
    rec = Recorder()
    model.predict(cands, batch=True, telemetry=rec)
    flat = str(rec.snapshot())
    assert "plan/compile" in flat
    assert "model/plan_cache/compiles" in flat


def test_plan_cache_stats_keys():
    stats = plan_cache_stats()
    for key in ("hits", "misses", "compiles", "compile_seconds",
                "numba_active", "size", "maxsize"):
        assert key in stats
    assert stats["numba_active"] in (True, False)


# -- numba gate ---------------------------------------------------------------


def test_numba_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_NUMBA", "0")
    planmod._reset_numba_for_tests()
    try:
        assert planmod._resolve_numba_walk() is None
        assert not planmod.numba_active()
        # The pure-numpy path still serves predictions.
        model, cands = _setup()
        assert model.predict(cands[0]) > 0
    finally:
        planmod._reset_numba_for_tests()


def test_numba_absent_falls_back_cleanly(monkeypatch):
    """Whatever the environment, resolution never raises and the plan
    path works; when numba is missing the walk resolves to None."""
    planmod._reset_numba_for_tests()
    try:
        walk = planmod._resolve_numba_walk()
        assert walk is None or callable(walk)
        model, cands = _setup()
        out = model.predict(cands, batch=True)
        assert (out > 0).all()
    finally:
        planmod._reset_numba_for_tests()
