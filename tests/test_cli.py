"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "0.03"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fft"])


class TestCommands:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        for name in ("DC", "IO", "HY1", "HY2"):
            assert name in out

    def test_sweep(self, capsys):
        out = run_cli(capsys, "sweep", "jacobi", "--config", "DC", *SCALE)
        assert "mean error" in out
        assert "Bal" in out

    def test_sweep_prefetch(self, capsys):
        out = run_cli(
            capsys, "sweep", "jacobi", "--config", "IO", "--prefetch", *SCALE
        )
        assert "jacobi" in out

    def test_predict_with_verify(self, capsys):
        out = run_cli(
            capsys,
            "predict", "lanczos", "--config", "HY2", "--dist", "bal",
            "--verify", *SCALE,
        )
        assert "bottleneck" in out
        assert "error" in out

    def test_predict_unknown_distribution(self):
        with pytest.raises(SystemExit):
            main(["predict", "jacobi", "--dist", "zigzag", *SCALE])

    def test_predict_unknown_config(self):
        with pytest.raises(SystemExit):
            main(["predict", "jacobi", "--config", "XX", *SCALE])

    @pytest.mark.parametrize("algorithm", ["gbs", "random", "sweep"])
    def test_search(self, capsys, algorithm):
        out = run_cli(
            capsys,
            "search", "rna", "--config", "DC",
            "--algorithm", algorithm, "--budget", "40", *SCALE,
        )
        assert "improvement" in out

    def test_search_batch_size_does_not_change_answer(self, capsys):
        base = run_cli(
            capsys,
            "search", "rna", "--config", "DC", "--budget", "40", *SCALE,
        )
        chunked = run_cli(
            capsys,
            "search", "rna", "--config", "DC", "--budget", "40",
            "--batch-size", "4", *SCALE,
        )
        assert chunked == base

    def test_search_all_with_verify(self, capsys):
        out = run_cli(
            capsys,
            "search", "jacobi", "--config", "DC",
            "--algorithm", "all", "--budget", "20", "--verify",
            "--jobs", "2", *SCALE,
        )
        for algorithm in ("gbs", "genetic", "annealing", "random"):
            assert f"{algorithm}: emulator verifies" in out

    def test_sweep_jobs_and_cache_match_serial(self, capsys, tmp_path):
        serial = run_cli(capsys, "sweep", "jacobi", "--config", "DC", *SCALE)
        cache = tmp_path / "sweeps.json"
        fanned = run_cli(
            capsys,
            "sweep", "jacobi", "--config", "DC",
            "--jobs", "2", "--cache", str(cache), *SCALE,
        )
        assert fanned == serial
        assert cache.exists()
        warm = run_cli(
            capsys,
            "sweep", "jacobi", "--config", "DC",
            "--cache", str(cache), *SCALE,
        )
        assert warm == serial

    def test_adaptive(self, capsys):
        out = run_cli(capsys, "adaptive", "jacobi", "--config", "DC", *SCALE)
        assert "speedup" in out

    def test_accuracy_panel(self, capsys):
        out = run_cli(
            capsys, "accuracy", "--panel", "rna", "--steps", "1", *SCALE
        )
        assert "overall" in out

    def test_spreads(self, capsys):
        out = run_cli(capsys, "spreads", "--steps", "1", *SCALE)
        assert "worst/best" in out

    def test_ablation(self, capsys):
        out = run_cli(capsys, "ablation", "--steps", "1", *SCALE)
        assert "ablation" in out.lower()

    def test_robustness(self, capsys):
        out = run_cli(capsys, "robustness", *SCALE)
        assert "background load" in out

    def test_multigrid_app_available(self, capsys):
        out = run_cli(capsys, "predict", "multigrid", "--config", "DC", *SCALE)
        assert "multigrid" in out


class TestFileWorkflow:
    def test_instrument_then_predict(self, capsys, tmp_path):
        path = tmp_path / "mheta.json"
        out = run_cli(
            capsys, "instrument", "jacobi", str(path), "--config", "DC", *SCALE
        )
        assert "internal MHETA file" in out
        assert path.exists()
        out = run_cli(
            capsys,
            "predict", "jacobi", "--config", "DC",
            "--inputs", str(path), "--dist", "bal", *SCALE,
        )
        assert "bottleneck" in out

    def test_analyse(self, capsys):
        out = run_cli(
            capsys, "analyse", "jacobi", "--config", "HY1", *SCALE
        )
        assert "imbalance" in out
        assert "util" in out

    def test_sweep_chart_flag(self, capsys):
        out = run_cli(
            capsys, "sweep", "lanczos", "--config", "DC", "--chart", *SCALE
        )
        assert "actual" in out and "predicted" in out
        assert "|" in out  # the chart frame


class TestTwoDCli:
    def test_predict_twod_roundtrip(self, capsys):
        out = run_cli(
            capsys,
            "predict", "jacobi", "--config", "DC",
            "--twod", "2x4", "--kernel", "plan", "--verify", *SCALE,
        )
        assert "2x4 grid" in out
        assert "kernel=plan" in out
        assert "predicted:" in out
        assert "rank 7" in out  # per-rank report lines
        assert "error" in out  # --verify ran the 2-D emulator

    def test_predict_twod_explicit_bands(self, capsys):
        out = run_cli(
            capsys,
            "predict", "jacobi", "--config", "DC",
            "--twod", "2x4", "--rows", "800,618", *SCALE,
        )
        assert "rows=[800, 618]" in out

    def test_predict_twod_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["predict", "jacobi", "--config", "DC",
                 "--twod", "3x3", *SCALE]
            )
        with pytest.raises(SystemExit):
            main(
                ["predict", "jacobi", "--config", "DC",
                 "--twod", "nope", *SCALE]
            )

    def test_predict_twod_non_jacobi_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["predict", "cg", "--config", "DC", "--twod", "2x4", *SCALE]
            )

    def test_search_twod_single_shape(self, capsys):
        out = run_cli(
            capsys,
            "search", "jacobi", "--config", "DC",
            "--twod", "2x4", "--budget", "60", *SCALE,
        )
        assert "twod-gbs" in out
        assert "2x4:" in out

    def test_search_twod_all_shapes_with_telemetry(self, capsys):
        out = run_cli(
            capsys,
            "search", "jacobi", "--config", "DC",
            "--twod", "all", "--kernel", "plan",
            "--budget", "60", "--telemetry", "text", *SCALE,
        )
        for shape in ("1x8", "2x4", "4x2", "8x1"):
            assert f"{shape}:" in out
        assert "<-" in out  # winner marker
        assert "span/search/twod" in out
