"""Stress and scale tests for the event engine and collectives."""

import pytest

from repro.cluster import baseline_cluster
from repro.core import MhetaModel
from repro.distribution import block
from repro.instrument.collect import MeasurementConfig, collect_inputs
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.sim.engine import Delay, Engine, Recv, Send
from tests.conftest import make_cg_like, make_jacobi_like, make_pipeline_like

IDEAL = PerturbationConfig.none()
PERFECT = MeasurementConfig.perfect()


class TestEngineScale:
    def test_many_processes(self):
        """A thousand independent processes complete without issue."""
        engine = Engine()

        def worker(i):
            for _ in range(10):
                yield Delay(0.001 * (i % 7 + 1))

        for i in range(1000):
            engine.add_process(worker(i), node=i)
        total = engine.run()
        assert total == pytest.approx(0.07)

    def test_long_token_ring(self):
        """A token passed around a 100-node ring 5 times."""
        engine = Engine()
        n = 100
        laps = 5

        def node(rank):
            for lap in range(laps):
                if rank == 0 and lap == 0:
                    pass  # node 0 starts holding the token
                else:
                    yield Recv((rank - 1) % n, f"token:{lap}:{rank}")
                nxt = (rank + 1) % n
                next_lap = lap + (1 if nxt == 0 else 0)
                if next_lap < laps:
                    yield Send(
                        nxt, f"token:{next_lap}:{nxt}", transfer=0.001
                    )

        for rank in range(n):
            engine.add_process(node(rank), node=rank)
        total = engine.run()
        # 5 laps x 100 hops x 1ms, minus the final undelivered hop.
        assert total == pytest.approx((laps * n - 1) * 0.001)


class TestLargeClusterExactness:
    """The model-emulator agreement holds beyond 8 nodes (the equations
    never hard-code the paper's cluster size)."""

    @pytest.mark.parametrize("n_nodes", [2, 3, 13, 32])
    def test_jacobi_like(self, n_nodes):
        cluster = baseline_cluster(name=f"wide{n_nodes}", n_nodes=n_nodes)
        program = make_jacobi_like(n_rows=64 * n_nodes, cols=256, iterations=3)
        d0 = block(cluster, program.n_rows)
        inputs = collect_inputs(
            cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
        )
        model = MhetaModel(program, cluster, inputs)
        actual = ClusterEmulator(cluster, program, IDEAL).run(d0)
        assert model.predict_seconds(d0) == pytest.approx(
            actual.total_seconds, rel=1e-9
        )

    @pytest.mark.parametrize("n_nodes", [3, 17])
    def test_collective_heavy_program(self, n_nodes):
        cluster = baseline_cluster(name=f"coll{n_nodes}", n_nodes=n_nodes)
        program = make_cg_like(n_rows=32 * n_nodes, iterations=3)
        d0 = block(cluster, program.n_rows)
        inputs = collect_inputs(
            cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
        )
        model = MhetaModel(program, cluster, inputs)
        actual = ClusterEmulator(cluster, program, IDEAL).run(d0)
        assert model.predict_seconds(d0) == pytest.approx(
            actual.total_seconds, rel=1e-9
        )

    @pytest.mark.parametrize("n_nodes", [2, 5, 16])
    def test_pipeline_program(self, n_nodes):
        cluster = baseline_cluster(name=f"pipe{n_nodes}", n_nodes=n_nodes)
        program = make_pipeline_like(
            n_rows=32 * n_nodes, cols=128, tiles=6, iterations=2
        )
        d0 = block(cluster, program.n_rows)
        inputs = collect_inputs(
            cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
        )
        model = MhetaModel(program, cluster, inputs)
        actual = ClusterEmulator(cluster, program, IDEAL).run(d0)
        assert model.predict_seconds(d0) == pytest.approx(
            actual.total_seconds, rel=1e-9
        )

    def test_non_power_of_two_reduction_tree(self):
        """Binomial reduce/broadcast with P=6 (non-power-of-two) stays
        exact — the tree handles ragged fan-ins."""
        cluster = baseline_cluster(name="six", n_nodes=6)
        program = make_jacobi_like(n_rows=600, cols=64, iterations=4)
        d0 = block(cluster, program.n_rows)
        inputs = collect_inputs(
            cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
        )
        model = MhetaModel(program, cluster, inputs)
        actual = ClusterEmulator(cluster, program, IDEAL).run(d0)
        assert model.predict_seconds(d0) == pytest.approx(
            actual.total_seconds, rel=1e-9
        )
