"""Tests for the adaptive runtime and redistribution model."""

import pytest

from repro.cluster import baseline_cluster, config_dc
from repro.distribution import GenBlock, balanced, block
from repro.exceptions import ModelError
from repro.runtime import AdaptiveRuntime, RedistributionModel
from repro.runtime.redistribution import _moved_segments
from repro.search import RandomSearch
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.util.units import mib
from tests.conftest import make_jacobi_like


class TestMovedSegments:
    def test_identical_distributions_move_nothing(self):
        d = GenBlock([10, 10, 10])
        assert _moved_segments(d, d) == []

    def test_simple_shift(self):
        old = GenBlock([10, 10])
        new = GenBlock([5, 15])
        segments = _moved_segments(old, new)
        assert segments == [(5, 10, 0, 1)]

    def test_full_reversal(self):
        old = GenBlock([10, 0])
        new = GenBlock([0, 10])
        assert segments_total(_moved_segments(old, new)) == 10

    def test_mismatched_raise(self):
        with pytest.raises(ModelError):
            _moved_segments(GenBlock([5]), GenBlock([5, 5]))


def segments_total(segments):
    return sum(stop - start for start, stop, _, _ in segments)


class TestRedistributionModel:
    @pytest.fixture
    def model(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=1024)
        return RedistributionModel(base_cluster, program), program

    def test_noop_costs_nothing(self, model, base_cluster):
        redis, program = model
        d = block(base_cluster, program.n_rows)
        estimate = redis.estimate(d, d)
        assert estimate.is_noop
        assert estimate.seconds == 0.0

    def test_cost_scales_with_moved_rows(self, model, base_cluster):
        redis, program = model
        d = block(base_cluster, program.n_rows)
        small = redis.estimate(d, d.moved(0, 1, 16))
        large = redis.estimate(d, d.moved(0, 1, 160))
        assert large.seconds > small.seconds
        assert large.moved_rows == 160

    def test_bytes_conservation(self, model, base_cluster):
        redis, program = model
        d = block(base_cluster, program.n_rows)
        estimate = redis.estimate(d, d.moved(2, 5, 64))
        assert sum(estimate.per_node_out_bytes) == pytest.approx(
            sum(estimate.per_node_in_bytes)
        )
        assert estimate.per_node_out_bytes[2] > 0
        assert estimate.per_node_in_bytes[5] > 0

    def test_out_of_core_endpoints_cost_more(self, base_cluster):
        program = make_jacobi_like(n_rows=8192, cols=8192)
        roomy = RedistributionModel(base_cluster, program)
        tight_cluster = base_cluster.with_nodes(
            [n.with_(memory_bytes=mib(2)) for n in base_cluster.nodes]
        )
        tight = RedistributionModel(tight_cluster, program)
        d = block(base_cluster, program.n_rows)
        new = d.moved(0, 7, 512)
        assert tight.estimate(d, new).seconds > roomy.estimate(d, new).seconds

    def test_worth_switching_logic(self, model, base_cluster):
        redis, program = model
        d = block(base_cluster, program.n_rows)
        new = d.moved(0, 1, 200)
        cost = redis.estimate(d, new).seconds
        assert redis.worth_switching(d, new, cost, remaining_iterations=10)
        assert not redis.worth_switching(
            d, new, cost / 1000, remaining_iterations=1
        )
        assert not redis.worth_switching(d, new, -1.0, 100)
        assert not redis.worth_switching(d, new, 1.0, 0)


class TestAdaptiveRuntime:
    def _runtime(self, cluster=None, **kwargs):
        cluster = cluster or config_dc()
        program = make_jacobi_like(n_rows=2048, cols=512, iterations=40)
        return AdaptiveRuntime(cluster, program, **kwargs), program

    def test_beats_static_on_dc(self):
        runtime, _ = self._runtime()
        report = runtime.run()
        assert report.switched
        assert report.adaptive_seconds < report.static_seconds
        assert report.speedup_vs_static > 1.0

    def test_report_totals_consistent(self):
        runtime, _ = self._runtime()
        report = runtime.run()
        assert report.adaptive_seconds == pytest.approx(
            report.instrumented_seconds
            + report.search_wall_seconds
            + report.redistribution_seconds
            + report.remaining_seconds
        )

    def test_prediction_matches_reality(self):
        runtime, _ = self._runtime()
        report = runtime.run()
        assert report.remaining_seconds == pytest.approx(
            report.predicted_remaining_seconds, rel=0.10
        )

    def test_homogeneous_cluster_keeps_start(self):
        cluster = baseline_cluster()
        program = make_jacobi_like(n_rows=2048, cols=512, iterations=8)
        runtime = AdaptiveRuntime(cluster, program)
        report = runtime.run()
        # Nothing to gain: Blk is already balanced and in core.
        assert not report.switched
        assert report.redistribution_seconds == 0.0

    def test_custom_search_used(self):
        cluster = config_dc()
        program = make_jacobi_like(n_rows=2048, cols=512, iterations=8)
        # A search that cannot find anything: keeps the start.
        runtime = AdaptiveRuntime(cluster, program, search_budget=1)
        report = runtime.run()
        assert report.search_evaluations <= 1

    def test_custom_start_distribution(self):
        cluster = config_dc()
        program = make_jacobi_like(n_rows=2048, cols=512, iterations=8)
        start = balanced(cluster, program.n_rows)
        report = AdaptiveRuntime(cluster, program).run(start=start)
        assert report.start_distribution == start
        # Starting at the optimum: no switch needed.
        assert not report.switched

    def test_describe_renders(self):
        runtime, _ = self._runtime()
        text = runtime.run().describe()
        assert "speedup" in text
        assert "search" in text
