"""Tests for the application structural models."""

import numpy as np
import pytest

from repro.apps import (
    ConjugateGradientApp,
    JacobiApp,
    LanczosApp,
    MultigridApp,
    RnaPipelineApp,
    application_by_name,
    paper_applications,
)
from repro.apps.cg import sparse_row_weights
from repro.program.sections import CommPattern
from repro.program.variables import Access


class TestPaperSuite:
    def test_four_applications(self):
        apps = paper_applications()
        assert [a.name for a in apps] == ["jacobi", "cg", "lanczos", "rna"]

    def test_paper_iteration_counts(self):
        apps = {a.name: a for a in paper_applications()}
        assert apps["jacobi"].structure.iterations == 100
        assert apps["cg"].structure.iterations == 10
        assert apps["lanczos"].structure.iterations == 5
        assert apps["rna"].structure.iterations == 10

    def test_lookup_by_name(self):
        assert application_by_name("Jacobi").name == "jacobi"
        assert application_by_name("multigrid").name == "multigrid"
        with pytest.raises(KeyError):
            application_by_name("fft")

    def test_scaling_shrinks_dataset(self):
        full = JacobiApp.paper()
        small = JacobiApp.paper(scale=0.25)
        assert small.dataset_bytes < full.dataset_bytes / 2

    def test_structures_cached(self):
        app = JacobiApp.paper()
        assert app.structure is app.structure

    def test_repr_mentions_size(self):
        assert "n_rows" in repr(JacobiApp.paper())


class TestJacobi:
    def test_structure_shape(self):
        s = JacobiApp.paper().structure
        assert len(s.sections) == 2
        sweep, residual = s.sections
        assert sweep.comm.pattern is CommPattern.NEAREST_NEIGHBOR
        assert residual.comm.pattern is CommPattern.REDUCTION

    def test_grid_is_read_write(self):
        s = JacobiApp.paper().structure
        assert s.variable("grid").access is Access.READ_WRITE

    def test_boundary_message_is_one_row(self):
        app = JacobiApp.paper()
        s = app.structure
        assert s.sections[0].comm.message_bytes == app.config.cols * 8

    def test_prefetching_variant(self):
        app = JacobiApp.paper()
        assert app.prefetching().prefetch
        assert not app.structure.prefetch


class TestCg:
    def test_matrix_read_only_and_sparse_sized(self):
        s = ConjugateGradientApp.paper().structure
        a = s.variable("A")
        assert a.access is Access.READ_ONLY
        assert a.element_size == 12  # value + column index

    def test_has_allgather_and_two_reductions(self):
        s = ConjugateGradientApp.paper().structure
        patterns = [sec.comm.pattern for sec in s.sections]
        assert patterns.count(CommPattern.ALLGATHER) == 1
        assert patterns.count(CommPattern.REDUCTION) == 2

    def test_row_weights_present_and_skewed(self):
        s = ConjugateGradientApp.paper().structure
        assert s.row_weights is not None
        assert s.row_weights.std() > 0.01

    def test_row_weights_block_imbalance(self):
        # Contiguous eighths must differ by a few percent — the effect
        # that defeats MHETA's row-count scaling (paper Section 5.4).
        s = ConjugateGradientApp.paper().structure
        blocks = np.array_split(s.row_weights, 8)
        means = [b.mean() for b in blocks]
        assert max(means) / min(means) > 1.02

    def test_weights_deterministic(self):
        a = sparse_row_weights(1000)
        b = sparse_row_weights(1000)
        assert np.array_equal(a, b)

    def test_scale_keeps_nnz_per_row(self):
        small = ConjugateGradientApp.paper(scale=0.1)
        full = ConjugateGradientApp.paper()
        assert small.config.cols == full.config.cols
        assert small.config.n_rows < full.config.n_rows


class TestLanczos:
    def test_matrix_read_only(self):
        s = LanczosApp.paper().structure
        assert s.variable("A").access is Access.READ_ONLY

    def test_square_matrix(self):
        app = LanczosApp.paper()
        assert app.config.n_rows == app.config.cols

    def test_replicated_vectors(self):
        s = LanczosApp.paper().structure
        names = {v.name for v in s.replicated_variables}
        assert "v_full" in names and "v_prev" in names


class TestRna:
    def test_single_pipelined_section(self):
        s = RnaPipelineApp.paper().structure
        assert len(s.sections) == 1
        section = s.sections[0]
        assert section.comm.pattern is CommPattern.PIPELINE
        assert section.tiles > 1

    def test_tile_message_size(self):
        app = RnaPipelineApp.paper()
        section = app.structure.sections[0]
        assert section.comm.message_bytes == pytest.approx(
            app.config.cols / section.tiles * 8
        )

    def test_tiny_scale_keeps_valid_tiles(self):
        app = RnaPipelineApp.paper(scale=0.001)
        assert app.structure.sections[0].tiles >= 2


class TestMultigrid:
    def test_levels_give_many_sections(self):
        s = MultigridApp.paper().structure
        # down: 2 per level transition; coarse solve; up: 2 per level.
        expected = 2 * 3 + 1 + 2 * 3
        assert len(s.sections) == expected

    def test_coarser_levels_smaller(self):
        s = MultigridApp.paper().structure
        cols = [s.variable(f"grid{i}").cols for i in range(4)]
        assert cols == sorted(cols, reverse=True)
        assert cols[1] == pytest.approx(cols[0] / 4)

    def test_hierarchy_adds_about_a_third(self):
        s = MultigridApp.paper().structure
        finest = s.variable("grid0").local_bytes(s.n_rows)
        assert s.dataset_bytes < finest * 1.5

    def test_has_convergence_reduction(self):
        s = MultigridApp.paper().structure
        assert any(
            sec.comm.pattern is CommPattern.REDUCTION for sec in s.sections
        )

    def test_runs_under_model_and_emulator(self, base_cluster):
        from repro.distribution import block
        from repro.experiments import build_model
        from repro.sim import ClusterEmulator, PerturbationConfig
        from repro.instrument.collect import MeasurementConfig, collect_inputs
        from repro.core import MhetaModel

        program = MultigridApp.paper(scale=0.01).structure.with_iterations(2)
        ideal = PerturbationConfig.none()
        d0 = block(base_cluster, program.n_rows)
        inputs = collect_inputs(
            base_cluster, program, d0, perturbation=ideal,
            measurement=MeasurementConfig.perfect(),
        )
        model = MhetaModel(program, base_cluster, inputs)
        actual = ClusterEmulator(base_cluster, program, ideal).run(d0)
        assert model.predict_seconds(d0) == pytest.approx(
            actual.total_seconds, rel=1e-9
        )
