"""Tests for the distribution-search algorithms."""

import pytest

from repro.core import MhetaModel
from repro.distribution import balanced, block
from repro.exceptions import SearchError
from repro.instrument import collect_inputs
from repro.instrument.collect import MeasurementConfig
from repro.search import (
    BudgetedEvaluator,
    EvaluationCache,
    GeneralizedBinarySearch,
    GeneticSearch,
    RandomSearch,
    SearchAlgorithm,
    SimulatedAnnealingSearch,
    SpectrumSweep,
)
from repro.sim import PerturbationConfig
from tests.conftest import make_jacobi_like


@pytest.fixture(scope="module")
def search_setup():
    """A heterogeneous cluster + model where Bal clearly beats Blk."""
    from repro.cluster import baseline_cluster

    cluster = baseline_cluster(name="search-test")
    nodes = [
        n.with_(cpu_power=[0.25, 0.5, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0][i])
        for i, n in enumerate(cluster.nodes)
    ]
    cluster = cluster.with_nodes(nodes)
    program = make_jacobi_like(n_rows=2048, cols=512, iterations=5)
    inputs = collect_inputs(
        cluster,
        program,
        block(cluster, program.n_rows),
        perturbation=PerturbationConfig.none(),
        measurement=MeasurementConfig.perfect(),
    )
    model = MhetaModel(program, cluster, inputs)
    return cluster, program, model


class TestEvaluationCache:
    def test_caches_repeats(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        d = block(cluster, program.n_rows)
        cache(d)
        cache(d)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_candidates_counted(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        cache(block(cluster, program.n_rows))
        cache(balanced(cluster, program.n_rows))
        assert cache.evaluations == 2


ALGORITHMS = ["gbs", "genetic", "annealing", "random", "sweep"]


def make_search(name, model, cluster):
    if name == "gbs":
        return GeneralizedBinarySearch(model, cluster)
    if name == "genetic":
        return GeneticSearch(model, population=8, generations=5)
    if name == "annealing":
        return SimulatedAnnealingSearch(model, steps=60)
    if name == "random":
        return RandomSearch(model, samples=40)
    return SpectrumSweep(model, cluster, steps_per_leg=4)


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_beats_block_distribution(self, name, search_setup):
        cluster, program, model = search_setup
        blk_time = model.predict_seconds(block(cluster, program.n_rows))
        result = make_search(name, model, cluster).search(budget=120)
        assert result.predicted_seconds <= blk_time
        assert result.best.n_rows == program.n_rows
        assert min(result.best.counts) >= 1

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_budget_respected(self, name, search_setup):
        cluster, program, model = search_setup
        result = make_search(name, model, cluster).search(budget=25)
        assert result.evaluations <= 25

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_deterministic(self, name, search_setup):
        cluster, program, model = search_setup
        a = make_search(name, model, cluster).search(budget=60)
        b = make_search(name, model, cluster).search(budget=60)
        assert a.best == b.best
        assert a.predicted_seconds == b.predicted_seconds

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_trajectory_monotone(self, name, search_setup):
        cluster, program, model = search_setup
        result = make_search(name, model, cluster).search(budget=60)
        traj = result.trajectory
        assert all(b <= a for a, b in zip(traj, traj[1:]))


class TestGbsQuality:
    def test_gbs_close_to_exhaustive_sweep(self, search_setup):
        cluster, program, model = search_setup
        gbs = GeneralizedBinarySearch(model, cluster).search(budget=150)
        sweep = SpectrumSweep(model, cluster, steps_per_leg=16).search(
            budget=200
        )
        assert gbs.predicted_seconds <= sweep.predicted_seconds * 1.05

    def test_gbs_finds_balanced_for_cpu_only_heterogeneity(self, search_setup):
        cluster, program, model = search_setup
        result = GeneralizedBinarySearch(model, cluster).search(budget=150)
        bal_time = model.predict_seconds(
            balanced(cluster, program.n_rows)
        )
        assert result.predicted_seconds <= bal_time * 1.02


class TestBudgetHardCap:
    """The budget is a hard cap: no path — including scoring the
    algorithm's final answer — may perform evaluation #budget+1."""

    @pytest.mark.parametrize("name", ALGORITHMS)
    @pytest.mark.parametrize("budget", [1, 3, 10])
    def test_tight_budgets_never_exceeded(self, name, budget, search_setup):
        cluster, program, model = search_setup
        result = make_search(name, model, cluster).search(budget=budget)
        assert result.evaluations <= budget

    def test_unevaluated_answer_does_not_cost_extra(self, search_setup):
        """Regression: an algorithm returning a distribution it never
        scored used to trigger evaluation #budget+1 in ``search()``."""
        cluster, program, model = search_setup

        class SneakySearch(SearchAlgorithm):
            name = "sneaky"

            def _run(self, evaluate, start):
                evaluate(block(cluster, program.n_rows))
                # Final answer was never passed through ``evaluate``.
                return balanced(cluster, program.n_rows)

        result = SneakySearch(model).search(budget=1)
        assert result.evaluations <= 1
        # The unscored answer was discarded for the best *cached* one.
        assert result.best == block(cluster, program.n_rows)

    def test_unevaluated_answer_scored_within_budget(self, search_setup):
        cluster, program, model = search_setup

        class LazySearch(SearchAlgorithm):
            name = "lazy"

            def _run(self, evaluate, start):
                return balanced(cluster, program.n_rows)

        result = LazySearch(model).search(budget=5)
        assert result.evaluations == 1
        assert result.best == balanced(cluster, program.n_rows)

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_cache_counters_reported(self, name, search_setup):
        cluster, program, model = search_setup
        result = make_search(name, model, cluster).search(budget=60)
        assert result.cache_hits >= 0
        assert result.evaluations >= 1


class _CountingModel:
    """Wrap a model, counting invocations per distribution."""

    def __init__(self, model):
        self._model = model
        self.scalar_calls = {}
        self.report_calls = {}

    def __getattr__(self, name):
        return getattr(self._model, name)

    def predict_seconds(self, distribution, iterations=None):
        key = distribution.counts
        self.scalar_calls[key] = self.scalar_calls.get(key, 0) + 1
        return self._model.predict(distribution, iterations)

    def predict_seconds_batch(self, distributions, iterations=None):
        for distribution in distributions:
            key = distribution.counts
            self.scalar_calls[key] = self.scalar_calls.get(key, 0) + 1
        return self._model.predict(distributions, iterations, batch=True)

    def predict(
        self,
        distribution,
        iterations=None,
        *,
        batch=False,
        report=False,
        telemetry=None,
    ):
        if batch:
            return self.predict_seconds_batch(distribution, iterations)
        key = distribution.counts
        if report:
            self.report_calls[key] = self.report_calls.get(key, 0) + 1
        else:
            self.scalar_calls[key] = self.scalar_calls.get(key, 0) + 1
        return self._model.predict(
            distribution, iterations, report=report, telemetry=telemetry
        )


class TestGbsEvaluationAccounting:
    def test_bottleneck_reports_cached_and_counted(self, search_setup):
        """Regression: GBS's hill climb called ``model.predict``
        directly, bypassing the cache — uncounted model evaluations."""
        cluster, program, model = search_setup
        counting = _CountingModel(model)
        result = GeneralizedBinarySearch(counting, cluster).search(budget=120)
        # Every scalar invocation is a counted (distinct) evaluation.
        assert sum(counting.scalar_calls.values()) == result.evaluations
        # Full reports are cached: at most one model run per distribution.
        assert counting.report_calls
        assert max(counting.report_calls.values()) == 1
        # GBS only inspects candidates it already paid for.
        assert set(counting.report_calls) <= set(counting.scalar_calls)

    def test_report_on_new_distribution_is_budgeted(self, search_setup):
        from repro.search.base import _BudgetExhausted

        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        evaluator = BudgetedEvaluator(model, cache, budget=1, trajectory=[])
        report = evaluator.report(block(cluster, program.n_rows))
        assert report.total_seconds > 0
        assert cache.evaluations == 1  # the report counted as an evaluation
        with pytest.raises(_BudgetExhausted):
            evaluator.report(balanced(cluster, program.n_rows))
        # A repeated report is served from the cache, not the budget.
        assert evaluator.report(block(cluster, program.n_rows)) is report


class TestSearchValidation:
    def test_zero_budget_raises(self, search_setup):
        cluster, program, model = search_setup
        with pytest.raises(SearchError):
            RandomSearch(model).search(budget=0)

    def test_start_distribution_used(self, search_setup):
        cluster, program, model = search_setup
        start = balanced(cluster, program.n_rows)
        result = RandomSearch(model, samples=0).search(budget=5, start=start)
        assert result.best == start

    def test_result_str(self, search_setup):
        cluster, program, model = search_setup
        result = RandomSearch(model, samples=5).search(budget=10)
        text = str(result)
        assert "random" in text and "evaluations" in text


class TestBatchedEvaluation:
    """``BudgetedEvaluator.batch``: dedup, accounting, hard budget."""

    def _evaluator(self, model, budget):
        cache = EvaluationCache(model.predict_seconds)
        trajectory = []
        from repro.search.base import BudgetedEvaluator

        return BudgetedEvaluator(model, cache, budget, trajectory), cache, trajectory

    def test_batch_matches_serial_values(self, search_setup):
        cluster, program, model = search_setup
        evaluator, cache, _ = self._evaluator(model, budget=10)
        cands = [block(cluster, program.n_rows), balanced(cluster, program.n_rows)]
        values = evaluator.batch(cands)
        assert values == [model.predict_seconds(d) for d in cands]

    def test_batch_dedup_within_batch(self, search_setup):
        cluster, program, model = search_setup
        evaluator, cache, _ = self._evaluator(model, budget=10)
        d = block(cluster, program.n_rows)
        values = evaluator.batch([d, d, d])
        assert values[0] == values[1] == values[2]
        # One charged miss, two in-batch repeats served as hits.
        assert cache.misses == 1
        assert cache.hits == 2

    def test_batch_dedup_against_cache(self, search_setup):
        cluster, program, model = search_setup
        evaluator, cache, _ = self._evaluator(model, budget=10)
        d = block(cluster, program.n_rows)
        evaluator(d)  # serial evaluation seeds the cache
        assert cache.misses == 1 and cache.hits == 0
        values = evaluator.batch([d, balanced(cluster, program.n_rows)])
        assert len(values) == 2
        # The pre-cached candidate is a hit, the new one a miss.
        assert cache.misses == 2
        assert cache.hits == 1

    def test_batch_truncates_at_budget_boundary(self, search_setup):
        from repro.search.base import _BudgetExhausted

        cluster, program, model = search_setup
        evaluator, cache, trajectory = self._evaluator(model, budget=2)
        blk = block(cluster, program.n_rows)
        bal = balanced(cluster, program.n_rows)
        third = blk.moved(0, 1, 5)
        with pytest.raises(_BudgetExhausted):
            evaluator.batch([blk, bal, third])
        # Exactly the affordable prefix was evaluated and recorded.
        assert cache.evaluations == 2
        assert blk.counts in cache and bal.counts in cache
        assert third.counts not in cache
        assert len(trajectory) == 2

    def test_batch_repeats_before_cut_still_served(self, search_setup):
        """A repeat of an affordable candidate costs nothing, so it is
        served even when a later distinct miss exhausts the budget."""
        from repro.search.base import _BudgetExhausted

        cluster, program, model = search_setup
        evaluator, cache, trajectory = self._evaluator(model, budget=1)
        blk = block(cluster, program.n_rows)
        bal = balanced(cluster, program.n_rows)
        with pytest.raises(_BudgetExhausted):
            evaluator.batch([blk, blk, bal])
        assert cache.evaluations == 1
        assert cache.hits == 1  # the in-batch repeat
        assert len(trajectory) == 2

    def test_batch_feeds_trajectory_running_best(self, search_setup):
        cluster, program, model = search_setup
        evaluator, _, trajectory = self._evaluator(model, budget=10)
        cands = [block(cluster, program.n_rows), balanced(cluster, program.n_rows)]
        evaluator.batch(cands)
        assert len(trajectory) == 2
        assert trajectory[1] <= trajectory[0]

    def test_batch_falls_back_without_vectorized_model(self, search_setup):
        """Models lacking ``predict_seconds_batch`` loop per candidate."""
        cluster, program, model = search_setup

        class ScalarOnly:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def predict_seconds(self, distribution, iterations=None):
                self.calls += 1
                return self._inner.predict_seconds(distribution, iterations)

        scalar_only = ScalarOnly(model)
        evaluator, cache, _ = self._evaluator(scalar_only, budget=10)
        cands = [block(cluster, program.n_rows), balanced(cluster, program.n_rows)]
        values = evaluator.batch(cands)
        assert scalar_only.calls == 2
        assert values == [model.predict_seconds(d) for d in cands]

    def test_evaluate_batch_helper_with_bare_callable(self, search_setup):
        from repro.search import evaluate_batch

        cluster, program, model = search_setup
        cands = [block(cluster, program.n_rows), balanced(cluster, program.n_rows)]
        values = evaluate_batch(model.predict_seconds, cands)
        assert values == [model.predict_seconds(d) for d in cands]

    def test_batch_size_validation(self, search_setup):
        cluster, program, model = search_setup
        with pytest.raises(SearchError):
            RandomSearch(model, batch_size=0)


class TestReportTrajectory:
    def test_report_on_new_distribution_feeds_trajectory(self, search_setup):
        """Regression: a budget-charged report used to skip the
        trajectory, desynchronising it from the evaluation count."""
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        trajectory = []
        evaluator = BudgetedEvaluator(model, cache, budget=5, trajectory=trajectory)
        evaluator.report(block(cluster, program.n_rows))
        assert len(trajectory) == 1
        # A repeated report is free and adds nothing.
        evaluator.report(block(cluster, program.n_rows))
        assert len(trajectory) == 1
        # A report on an already-evaluated distribution adds nothing.
        bal = balanced(cluster, program.n_rows)
        evaluator(bal)
        assert len(trajectory) == 2
        evaluator.report(bal)
        assert len(trajectory) == 2


class TestRunningBest:
    def test_best_is_tracked_on_insert(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        assert cache.best() is None
        cache.put((1, 2), 2.0)
        cache.put((3, 4), 1.0)
        cache.put((5, 6), 3.0)
        assert cache.best() == ((3, 4), 1.0)

    def test_best_keeps_earliest_key_on_tie(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        cache.put((1, 2), 1.0)
        cache.put((3, 4), 1.0)
        assert cache.best() == ((1, 2), 1.0)

    def test_put_many_records_all(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        cache.put_many([(1, 2), (3, 4)], [2.0, 1.5])
        assert cache.evaluations == 2
        assert cache.best() == ((3, 4), 1.5)

    def test_put_many_length_mismatch_raises(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        with pytest.raises(SearchError):
            cache.put_many([(1, 2)], [1.0, 2.0])


class TestEvaluationCachePut:
    def test_put_records_external_evaluation(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        d = block(cluster, program.n_rows)
        cache.put(d.counts, 1.25)
        assert cache(d) == 1.25  # served from cache, not re-evaluated
        assert cache.misses == 1 and cache.hits == 1

    def test_put_matching_value_is_noop(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        d = block(cluster, program.n_rows)
        value = cache(d)
        cache.put(d.counts, value)  # exact repeat
        cache.put(d.counts, value * (1 + 1e-12))  # rounding noise
        assert cache.value(d.counts) == value

    def test_put_conflicting_value_raises(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        d = block(cluster, program.n_rows)
        value = cache(d)
        with pytest.raises(SearchError, match="conflicting evaluations"):
            cache.put(d.counts, value * 1.01)
        # The original value survives the rejected insert.
        assert cache.value(d.counts) == value
