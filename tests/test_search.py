"""Tests for the distribution-search algorithms."""

import pytest

from repro.core import MhetaModel
from repro.distribution import balanced, block
from repro.exceptions import SearchError
from repro.instrument import collect_inputs
from repro.instrument.collect import MeasurementConfig
from repro.search import (
    EvaluationCache,
    GeneralizedBinarySearch,
    GeneticSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    SpectrumSweep,
)
from repro.sim import PerturbationConfig
from tests.conftest import make_jacobi_like


@pytest.fixture(scope="module")
def search_setup():
    """A heterogeneous cluster + model where Bal clearly beats Blk."""
    from repro.cluster import baseline_cluster

    cluster = baseline_cluster(name="search-test")
    nodes = [
        n.with_(cpu_power=[0.25, 0.5, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0][i])
        for i, n in enumerate(cluster.nodes)
    ]
    cluster = cluster.with_nodes(nodes)
    program = make_jacobi_like(n_rows=2048, cols=512, iterations=5)
    inputs = collect_inputs(
        cluster,
        program,
        block(cluster, program.n_rows),
        perturbation=PerturbationConfig.none(),
        measurement=MeasurementConfig.perfect(),
    )
    model = MhetaModel(program, cluster, inputs)
    return cluster, program, model


class TestEvaluationCache:
    def test_caches_repeats(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        d = block(cluster, program.n_rows)
        cache(d)
        cache(d)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_candidates_counted(self, search_setup):
        cluster, program, model = search_setup
        cache = EvaluationCache(model.predict_seconds)
        cache(block(cluster, program.n_rows))
        cache(balanced(cluster, program.n_rows))
        assert cache.evaluations == 2


ALGORITHMS = ["gbs", "genetic", "annealing", "random", "sweep"]


def make_search(name, model, cluster):
    if name == "gbs":
        return GeneralizedBinarySearch(model, cluster)
    if name == "genetic":
        return GeneticSearch(model, population=8, generations=5)
    if name == "annealing":
        return SimulatedAnnealingSearch(model, steps=60)
    if name == "random":
        return RandomSearch(model, samples=40)
    return SpectrumSweep(model, cluster, steps_per_leg=4)


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_beats_block_distribution(self, name, search_setup):
        cluster, program, model = search_setup
        blk_time = model.predict_seconds(block(cluster, program.n_rows))
        result = make_search(name, model, cluster).search(budget=120)
        assert result.predicted_seconds <= blk_time
        assert result.best.n_rows == program.n_rows
        assert min(result.best.counts) >= 1

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_budget_respected(self, name, search_setup):
        cluster, program, model = search_setup
        result = make_search(name, model, cluster).search(budget=25)
        assert result.evaluations <= 25

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_deterministic(self, name, search_setup):
        cluster, program, model = search_setup
        a = make_search(name, model, cluster).search(budget=60)
        b = make_search(name, model, cluster).search(budget=60)
        assert a.best == b.best
        assert a.predicted_seconds == b.predicted_seconds

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_trajectory_monotone(self, name, search_setup):
        cluster, program, model = search_setup
        result = make_search(name, model, cluster).search(budget=60)
        traj = result.trajectory
        assert all(b <= a for a, b in zip(traj, traj[1:]))


class TestGbsQuality:
    def test_gbs_close_to_exhaustive_sweep(self, search_setup):
        cluster, program, model = search_setup
        gbs = GeneralizedBinarySearch(model, cluster).search(budget=150)
        sweep = SpectrumSweep(model, cluster, steps_per_leg=16).search(
            budget=200
        )
        assert gbs.predicted_seconds <= sweep.predicted_seconds * 1.05

    def test_gbs_finds_balanced_for_cpu_only_heterogeneity(self, search_setup):
        cluster, program, model = search_setup
        result = GeneralizedBinarySearch(model, cluster).search(budget=150)
        bal_time = model.predict_seconds(
            balanced(cluster, program.n_rows)
        )
        assert result.predicted_seconds <= bal_time * 1.02


class TestSearchValidation:
    def test_zero_budget_raises(self, search_setup):
        cluster, program, model = search_setup
        with pytest.raises(SearchError):
            RandomSearch(model).search(budget=0)

    def test_start_distribution_used(self, search_setup):
        cluster, program, model = search_setup
        start = balanced(cluster, program.n_rows)
        result = RandomSearch(model, samples=0).search(budget=5, start=start)
        assert result.best == start

    def test_result_str(self, search_setup):
        cluster, program, model = search_setup
        result = RandomSearch(model, samples=5).search(budget=10)
        text = str(result)
        assert "random" in text and "evaluations" in text
