"""Unit tests for the shared ICLA placement logic."""

import pytest

from repro.exceptions import SimulationError
from repro.placement import plan_memory
from repro.program import ProgramBuilder
from repro.sim.memory import emulator_plan, runtime_reserved_bytes
from repro.util.units import mib
from tests.conftest import make_cg_like, make_jacobi_like


def single_var_program(n_rows=1024, cols=1024):
    return make_jacobi_like(n_rows=n_rows, cols=cols)


class TestInCoreDetermination:
    def test_fitting_array_is_in_core(self):
        program = single_var_program()
        rows = 64  # 64 * 8 KiB = 512 KiB
        plan = plan_memory(program, rows, mib(64))
        assert plan["grid"].in_core
        assert plan["grid"].n_io == 1
        assert plan["grid"].ocla_bytes == 0.0

    def test_oversized_array_is_out_of_core(self):
        program = single_var_program()
        rows = 1024  # 8 MiB of grid
        plan = plan_memory(program, rows, mib(4))
        placement = plan["grid"]
        assert not placement.in_core
        assert placement.n_io >= 2
        assert placement.ocla_bytes == placement.local_bytes

    def test_n_io_is_ceiling(self):
        program = single_var_program()
        plan = plan_memory(program, 1000, mib(4))
        placement = plan["grid"]
        expected = -(-1000 // placement.block_rows)
        assert placement.n_io == expected

    def test_replicated_data_reserves_memory(self):
        program = make_cg_like(n_rows=1024)
        rows = 512  # A's local array is 512 * 16 * 12 = 96 KiB
        generous = plan_memory(program, rows, mib(64))
        # Memory barely above the replicated size leaves almost nothing:
        # A must stream through a small ICLA.
        tight = plan_memory(
            program, rows, program.replicated_bytes + 50 * 1024
        )
        assert generous["A"].in_core
        assert not tight["A"].in_core
        assert generous["A"].icla_bytes > tight["A"].icla_bytes

    def test_zero_rows_trivially_in_core(self):
        program = single_var_program()
        plan = plan_memory(program, 0, mib(1))
        assert plan["grid"].in_core

    def test_negative_rows_raise(self):
        with pytest.raises(SimulationError):
            plan_memory(single_var_program(), -1, mib(1))


class TestMultiVariable:
    def test_small_variable_stays_in_core(self):
        program = make_cg_like(n_rows=4096)
        # A is 4096*16*12 = 768 KiB; q is 32 KiB. Memory fits q + part of A.
        plan = plan_memory(
            program, 4096, program.replicated_bytes + 300 * 1024
        )
        assert plan["q"].in_core
        assert not plan["A"].in_core

    def test_prorata_vs_equal_share(self):
        program = make_cg_like(n_rows=4096)
        mem = program.replicated_bytes + 100 * 1024
        prorata = plan_memory(
            program, 4096, mem, order_policy="size", share_policy="prorata",
            forced_out_of_core=True,
        )
        equal = plan_memory(
            program, 4096, mem, order_policy="size", share_policy="equal",
            forced_out_of_core=True,
        )
        # Pro-rata gives the big matrix a bigger ICLA than equal split.
        assert prorata["A"].icla_bytes > equal["A"].icla_bytes

    def test_unknown_policies_raise(self):
        program = single_var_program()
        with pytest.raises(SimulationError):
            plan_memory(program, 10, mib(1), order_policy="bogus")
        with pytest.raises(SimulationError):
            plan_memory(program, 10, mib(1), share_policy="bogus")


class TestForcedOutOfCore:
    def test_everything_streams(self):
        program = make_cg_like(n_rows=1024)
        plan = plan_memory(
            program, 512, mib(256), forced_out_of_core=True
        )
        for placement in plan.placements.values():
            if placement.local_rows > 0 and placement.local_bytes > 0:
                assert not placement.in_core
                assert placement.n_io >= 2

    def test_block_rows_at_most_half(self):
        program = single_var_program()
        plan = plan_memory(program, 1000, mib(512), forced_out_of_core=True)
        assert plan["grid"].block_rows <= 500


class TestIclaReservation:
    def test_reservation_shrinks_icla_not_in_core_status(self):
        program = single_var_program()
        rows = 200  # fits in 8 MiB? 200 rows * 8 KiB = 1.6 MiB
        with_reserve = plan_memory(
            program, rows, mib(2), icla_reserved_bytes=mib(1)
        )
        without = plan_memory(program, rows, mib(2))
        # 1.6 MiB fits in 2 MiB either way: determination unchanged.
        assert with_reserve["grid"].in_core == without["grid"].in_core

    def test_reservation_shrinks_ooc_blocks(self):
        program = single_var_program()
        rows = 1024  # 8 MiB, memory 4 MiB -> out of core
        squeezed = plan_memory(
            program, rows, mib(4), icla_reserved_bytes=mib(2)
        )
        roomy = plan_memory(program, rows, mib(4))
        assert squeezed["grid"].block_rows < roomy["grid"].block_rows
        assert squeezed["grid"].n_io > roomy["grid"].n_io


class TestEmulatorPlan:
    def test_reserves_message_buffers(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048)
        reserve = runtime_reserved_bytes(base_cluster[0], program)
        assert reserve > 4 * program.sections[0].comm.message_bytes

    def test_emulator_icla_smaller_than_oracle(self, base_cluster):
        program = make_jacobi_like(n_rows=8192, cols=8192)
        node = base_cluster[0].with_(memory_bytes=mib(4))
        rows = 1024  # 64 MiB >> 4 MiB
        runtime = emulator_plan(node, program, rows)
        oracle = plan_memory(program, rows, node.memory_bytes)
        assert not runtime["grid"].in_core and not oracle["grid"].in_core
        assert runtime["grid"].icla_bytes < oracle["grid"].icla_bytes

    def test_resident_bytes_accounting(self):
        program = make_cg_like(n_rows=1024)
        plan = plan_memory(program, 512, mib(256))
        expected = sum(
            p.local_bytes if p.in_core else p.icla_bytes
            for p in plan.placements.values()
        )
        assert plan.resident_bytes == pytest.approx(expected)

    def test_any_out_of_core_flag(self):
        program = single_var_program()
        assert plan_memory(program, 1024, mib(4)).any_out_of_core
        assert not plan_memory(program, 8, mib(64)).any_out_of_core
