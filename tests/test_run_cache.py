"""RunCache semantics: frozen payloads, key memoisation, disk tier."""

import json

from repro.apps import JacobiApp
from repro.cluster import table1_configs
from repro.distribution import block
from repro.parallel.cache import RunCache
from repro.sim import PerturbationConfig, emulate

SCALE = 0.05
ITERATIONS = 16
DETERMINISTIC = PerturbationConfig().without(compute_noise=False)


def _setup():
    cluster = table1_configs()["HY1"]
    program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
    return cluster, program, block(cluster, program.n_rows)


class TestFrozenPayloads:
    def test_mutated_result_never_poisons_the_cache(self):
        cluster, program, d = _setup()
        store = RunCache()
        first = emulate(
            cluster, program, d,
            perturbation=DETERMINISTIC, cache=store,
        )
        pristine_total = first.total_seconds
        pristine_node0 = first.per_node_seconds[0]
        pristine_end = first.iteration_ends[0][0]
        # Trash every mutable field of the returned result.
        first.per_node_seconds[0] = -1.0
        first.iteration_ends[0][0] = -1.0
        second = emulate(
            cluster, program, d,
            perturbation=DETERMINISTIC, cache=store,
        )
        assert second.total_seconds == pristine_total
        assert second.per_node_seconds[0] == pristine_node0
        assert second.iteration_ends[0][0] == pristine_end
        # And hits hand out private copies, not shared state.
        third = emulate(
            cluster, program, d,
            perturbation=DETERMINISTIC, cache=store,
        )
        second.per_node_seconds[0] = -2.0
        assert third.per_node_seconds[0] == pristine_node0

    def test_hit_returns_mutable_lists(self):
        cluster, program, d = _setup()
        store = RunCache()
        emulate(cluster, program, d, perturbation=DETERMINISTIC, cache=store)
        hit = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=store,
        )
        assert isinstance(hit.per_node_seconds, list)
        assert isinstance(hit.iteration_ends[0], list)


class TestKeyMemoisation:
    def test_key_base_composition_matches_key(self):
        cluster, program, d = _setup()
        direct = RunCache.key(
            cluster, program, d, ITERATIONS, DETERMINISTIC,
            instrumented=False, fast_forward=True,
        )
        base = RunCache.key_base(
            cluster, program, ITERATIONS, DETERMINISTIC,
            instrumented=False, fast_forward=True,
        )
        assert RunCache.key_from_base(base, d.counts) == direct

    def test_memo_respects_flags_and_iterations(self):
        cluster, program, d = _setup()
        keys = {
            RunCache.key_base(
                cluster, program, it, DETERMINISTIC,
                instrumented=instr, fast_forward=ff,
            )
            for it in (8, 16)
            for instr in (False, True)
            for ff in (False, True)
        }
        assert len(keys) == 8

    def test_repeated_key_base_is_stable(self):
        cluster, program, _ = _setup()
        a = RunCache.key_base(cluster, program, ITERATIONS, DETERMINISTIC)
        b = RunCache.key_base(cluster, program, ITERATIONS, DETERMINISTIC)
        assert a == b


class TestDiskTier:
    def test_round_trip(self, tmp_path):
        cluster, program, d = _setup()
        path = tmp_path / "runs.json"
        store = RunCache(path=path)
        result = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=store,
        )
        store.save()
        assert path.exists()
        reloaded = RunCache(path=path)
        assert reloaded.loaded_from_disk == 1
        key = RunCache.key(
            cluster, program, d, ITERATIONS, DETERMINISTIC,
            instrumented=False, fast_forward=True,
        )
        hit = reloaded.get(key)
        assert hit is not None
        assert hit.total_seconds == result.total_seconds
        assert list(hit.per_node_seconds) == list(result.per_node_seconds)
        assert [list(e) for e in hit.iteration_ends] == [
            list(e) for e in result.iteration_ends
        ]
        assert tuple(hit.distribution.counts) == tuple(d.counts)
        assert hit.iterations == result.iterations
        assert hit.fast_forwarded == result.fast_forwarded

    def test_save_merges_with_existing_file(self, tmp_path):
        cluster, program, d = _setup()
        path = tmp_path / "runs.json"
        a = RunCache(path=path)
        result = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=a,
        )
        a.save()
        b = RunCache(path=path)
        key_b = "0" * 64
        b.put(key_b, result)
        b.save()
        merged = json.loads(path.read_text())
        assert len(merged) == 2
        # The first process's entry survived the second's save.
        key_a = RunCache.key(
            cluster, program, d, ITERATIONS, DETERMINISTIC,
            instrumented=False, fast_forward=True,
        )
        assert key_a in merged and key_b in merged

    def test_corrupt_file_ignored(self, tmp_path):
        path = tmp_path / "runs.json"
        path.write_text("{not json")
        store = RunCache(path=path)
        assert len(store) == 0
        assert store.loaded_from_disk == 0

    def test_save_without_path_is_noop(self):
        RunCache().save()
