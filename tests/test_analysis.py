"""Tests for the trace-analysis module."""

import pytest

from repro.distribution import GenBlock, block
from repro.sim import ClusterEmulator, PerturbationConfig, analyse_run
from repro.sim.trace import TraceCollector
from repro.util.units import mib
from tests.conftest import make_jacobi_like

IDEAL = PerturbationConfig.none()


@pytest.fixture
def traced_run(base_cluster):
    program = make_jacobi_like(n_rows=2048, cols=2048, iterations=2)
    cluster = base_cluster.with_nodes(
        [n.with_(memory_bytes=mib(2)) for n in base_cluster.nodes],
        name="small",
    )
    trace = TraceCollector()
    result = ClusterEmulator(cluster, program, IDEAL).run(
        block(cluster, program.n_rows), observer=trace
    )
    return trace, result, program


class TestTraceCollectorIndexes:
    """The collector's accessors are index-backed; they must agree with
    brute-force scans of the raw record list."""

    def test_indexed_accessors_match_full_scans(self, traced_run):
        trace, _, _ = traced_run
        records = trace.records
        assert records
        ops = {r.op for r in records}
        nodes = {r.node for r in records}
        iterations = {r.iteration for r in records}
        for op in ops:
            assert trace.of_kind(op) == [r for r in records if r.op == op]
            assert trace.total(op) == pytest.approx(
                sum(r.duration for r in records if r.op == op)
            )
            for node in nodes:
                assert trace.total(op, node) == pytest.approx(
                    sum(
                        r.duration
                        for r in records
                        if r.op == op and r.node == node
                    )
                )
        for node in nodes:
            assert trace.for_node(node) == [r for r in records if r.node == node]
        for it in iterations:
            assert trace.for_iteration(it) == [
                r for r in records if r.iteration == it
            ]

    def test_missing_keys_return_empty(self):
        trace = TraceCollector()
        assert trace.of_kind("compute") == []
        assert trace.for_node(3) == []
        assert trace.for_iteration(9) == []
        assert trace.total("compute") == 0.0
        assert trace.total("compute", node=1) == 0.0

    def test_accessors_return_private_lists(self, traced_run):
        trace, _, _ = traced_run
        op = trace.records[0].op
        first = trace.of_kind(op)
        first.clear()
        assert trace.of_kind(op)  # internal index untouched


class TestAnalyseRun:
    def test_per_node_breakdowns(self, traced_run):
        trace, result, _ = traced_run
        analysis = analyse_run(trace, result)
        assert len(analysis.nodes) == 8
        for node in analysis.nodes:
            assert node.total_seconds > 0
            assert node.compute_seconds > 0
            assert node.io_seconds > 0  # out-of-core run
            assert node.idle_seconds >= 0

    def test_components_bounded_by_total(self, traced_run):
        trace, result, _ = traced_run
        analysis = analyse_run(trace, result)
        for node in analysis.nodes:
            accounted = (
                node.compute_seconds
                + node.read_seconds
                + node.write_seconds
                + node.send_seconds
                + node.recv_seconds
                + node.prefetch_wait_seconds
                + node.idle_seconds
            )
            assert accounted == pytest.approx(node.total_seconds, rel=1e-6)

    def test_io_bytes_by_variable(self, traced_run):
        trace, result, program = traced_run
        analysis = analyse_run(trace, result)
        grid_bytes = analysis.io_bytes_by_variable["grid"]
        # Each iteration: full read + full write of the grid, plus the
        # boundary reads for the neighbour messages.
        per_pass = program.n_rows * program.variable("grid").row_bytes
        assert grid_bytes >= 2 * 2 * per_pass

    def test_bottleneck_carries_most_load(self, traced_run):
        trace, result, _ = traced_run
        analysis = analyse_run(trace, result)
        loads = [n.compute_seconds + n.io_seconds for n in analysis.nodes]
        assert analysis.bottleneck.node == loads.index(max(loads))

    def test_imbalance_one_for_uniform(self, base_cluster, jacobi_like):
        trace = TraceCollector()
        result = ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(
            block(base_cluster, jacobi_like.n_rows), observer=trace
        )
        analysis = analyse_run(trace, result)
        assert analysis.imbalance == pytest.approx(1.0, abs=0.05)

    def test_imbalance_detects_slow_node(self, base_cluster, jacobi_like):
        slow = base_cluster.replace_node(
            0, base_cluster[0].with_(cpu_power=0.25)
        )
        trace = TraceCollector()
        result = ClusterEmulator(slow, jacobi_like, IDEAL).run(
            block(slow, jacobi_like.n_rows), observer=trace
        )
        analysis = analyse_run(trace, result)
        assert analysis.imbalance > 2.0
        assert analysis.bottleneck.node == 0

    def test_describe_renders(self, traced_run):
        trace, result, _ = traced_run
        text = analyse_run(trace, result).describe()
        assert "bottleneck" in text
        assert "grid" in text  # the I/O volume table
