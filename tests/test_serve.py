"""Tests for the distribution-advisor service (repro.serve).

The concurrency suite drives a real asyncio server over a loopback
socket with pipelining clients: identical and distinct queries issued
simultaneously must coalesce (asserted via the telemetry counters)
while every answer stays equal to its one-shot library counterpart.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster import config_dc, table1_configs
from repro.distribution import GenBlock, balanced, block
from repro.exceptions import ServeError
from repro.experiments import build_model
from repro.obs import Recorder
from repro.apps import JacobiApp, application_by_name
from repro.parallel import SweepCache
from repro.serve import (
    AsyncServeClient,
    MicroBatcher,
    Query,
    ServeCoordinator,
    decode_message,
    encode_message,
)

SCALE = 0.02  # tiny problems: full protocol, milliseconds of wall time


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# protocol


class TestProtocol:
    def test_message_round_trip(self):
        message = {"id": 3, "op": "predict", "app": "jacobi"}
        assert decode_message(encode_message(message)) == message

    def test_garbage_raises(self):
        with pytest.raises(ServeError):
            decode_message(b"{not json\n")
        with pytest.raises(ServeError):
            decode_message(b"[1, 2]\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(ServeError):
            Query.from_payload({"op": "frobnicate"})

    def test_predict_requires_app(self):
        with pytest.raises(ServeError):
            Query.from_payload({"op": "predict"})
        with pytest.raises(ServeError):
            Query.from_payload({"op": "predict", "app": "jacobo"})

    def test_bad_counts_rejected(self):
        for counts in ([], [0, 5], ["x"], "notalist"):
            with pytest.raises(ServeError):
                Query.from_payload(
                    {"op": "predict", "app": "jacobi", "counts": counts}
                )

    def test_bad_search_budget_rejected(self):
        with pytest.raises(ServeError):
            Query.from_payload(
                {"op": "search", "app": "cg", "budget": 0}
            )

    def test_identical_queries_share_a_coalesce_key(self):
        a = Query.from_payload(
            {"op": "predict", "app": "jacobi", "dist": "blk", "scale": 0.1}
        )
        b = Query.from_payload(
            {"op": "predict", "app": "jacobi", "dist": "blk", "scale": 0.1}
        )
        c = Query.from_payload(
            {"op": "predict", "app": "jacobi", "dist": "bal", "scale": 0.1}
        )
        assert a.coalesce_key() == b.coalesce_key()
        assert a.coalesce_key() != c.coalesce_key()

    def test_verify_and_predict_never_coalesce(self):
        p = Query.from_payload({"op": "predict", "app": "rna"})
        v = Query.from_payload({"op": "verify", "app": "rna"})
        assert p.coalesce_key() != v.coalesce_key()


# ---------------------------------------------------------------------------
# micro-batcher


class TestMicroBatcher:
    def test_concurrent_identical_submissions_coalesce(self):
        calls = []

        async def flush(payloads):
            calls.append(list(payloads))
            return [p * 10 for p in payloads]

        async def main():
            rec = Recorder()
            batcher = MicroBatcher(flush, window_seconds=0.01, telemetry=rec)
            results = await asyncio.gather(
                *[batcher.submit("k", 7) for _ in range(5)],
                batcher.submit("other", 3),
            )
            return rec, results

        rec, results = run(main())
        assert results == [70] * 5 + [30]
        assert calls == [[7, 3]]  # one flush, two distinct payloads
        assert rec.counters["serve/requests"] == 6
        assert rec.counters["serve/coalesced"] == 4
        assert rec.counters["serve/batches"] == 1

    def test_max_batch_flushes_early(self):
        calls = []

        async def flush(payloads):
            calls.append(list(payloads))
            return payloads

        async def main():
            batcher = MicroBatcher(flush, window_seconds=5.0, max_batch=3)
            return await asyncio.gather(
                *[batcher.submit(i, i) for i in range(3)]
            )

        # A 5 s window would time the test out unless max_batch fires.
        assert run(main()) == [0, 1, 2]
        assert calls == [[0, 1, 2]]

    def test_flush_error_reaches_every_waiter(self):
        async def flush(payloads):
            raise ValueError("kernel exploded")

        async def main():
            batcher = MicroBatcher(flush, window_seconds=0.005)
            return await asyncio.gather(
                batcher.submit("a", 1),
                batcher.submit("a", 1),
                batcher.submit("b", 2),
                return_exceptions=True,
            )

        results = run(main())
        assert all(isinstance(r, ValueError) for r in results)

    def test_sequential_rounds_do_not_coalesce(self):
        calls = []

        async def flush(payloads):
            calls.append(list(payloads))
            return payloads

        async def main():
            batcher = MicroBatcher(flush, window_seconds=0.001)
            first = await batcher.submit("k", 1)
            second = await batcher.submit("k", 1)
            return first, second

        assert run(main()) == (1, 1)
        assert len(calls) == 2


# ---------------------------------------------------------------------------
# coordinator end-to-end


def _serve_fixture(coordinator):
    """async context: started server + one pipelining client."""

    class _Ctx:
        async def __aenter__(self):
            self.handle = await coordinator.start(port=0)
            await self.handle.server.start_serving()
            self.client = await AsyncServeClient.open(
                self.handle.host, self.handle.port
            )
            return self.client

        async def __aexit__(self, *exc):
            await self.client.aclose()
            self.handle.server.close()
            await self.handle.server.wait_closed()
            await coordinator.aclose()

    return _Ctx()


class TestCoordinator:
    def test_concurrent_clients_coalesce_and_match_one_shot(self):
        rec = Recorder()
        coordinator = ServeCoordinator(window_seconds=0.02, telemetry=rec)
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        model = build_model(cluster, program)
        anchors = {
            "blk": block(cluster, program.n_rows),
            "bal": balanced(cluster, program.n_rows),
        }
        custom = GenBlock(
            [program.n_rows - 7 * (len(cluster.nodes) - 1)]
            + [7] * (len(cluster.nodes) - 1)
        )

        async def main():
            async with _serve_fixture(coordinator) as client:
                tasks = []
                for _ in range(8):  # identical queries from 8 "clients"
                    tasks.append(
                        client.predict(
                            "jacobi", config="DC", scale=SCALE, dist="blk"
                        )
                    )
                for _ in range(4):
                    tasks.append(
                        client.predict(
                            "jacobi", config="DC", scale=SCALE, dist="bal"
                        )
                    )
                tasks.append(
                    client.predict(
                        "jacobi", config="DC", scale=SCALE,
                        counts=list(custom.counts),
                    )
                )
                return await asyncio.gather(*tasks)

        results = run(main())
        # Identical queries: identical answers.
        assert len({r["predicted_seconds"] for r in results[:8]}) == 1
        # Every served answer matches its one-shot library counterpart.
        for result, dist in [
            (results[0], anchors["blk"]),
            (results[8], anchors["bal"]),
            (results[12], custom),
        ]:
            one_shot = model.predict(dist)
            assert result["counts"] == list(dist.counts)
            rel = abs(result["predicted_seconds"] - one_shot) / one_shot
            assert rel <= 1e-12
        # Coalescing really happened, and fewer kernel evaluations ran
        # than requests arrived.
        assert rec.counters["serve/coalesced"] >= 10
        assert rec.counters["serve/kernel_evaluations"] == 3
        assert rec.counters["serve/requests"] == 13

    def test_serial_batch_mode_is_bit_identical(self):
        coordinator = ServeCoordinator(
            window_seconds=0.02, batch_mode="serial"
        )
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        model = build_model(cluster, program)
        dists = [
            block(cluster, program.n_rows),
            balanced(cluster, program.n_rows),
        ]

        async def main():
            async with _serve_fixture(coordinator) as client:
                return await asyncio.gather(
                    *[
                        client.predict(
                            "jacobi", config="DC", scale=SCALE,
                            counts=list(d.counts),
                        )
                        for d in dists
                    ]
                )

        results = run(main())
        for result, dist in zip(results, dists):
            assert result["predicted_seconds"] == model.predict(dist)

    def test_eval_cache_stays_warm_across_rounds(self):
        rec = Recorder()
        coordinator = ServeCoordinator(window_seconds=0.005, telemetry=rec)

        async def main():
            async with _serve_fixture(coordinator) as client:
                first = await client.predict(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                second = await client.predict(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                return first, second

        first, second = run(main())
        assert first == second
        # Two separate rounds: the second never reached the kernel.
        assert rec.counters["serve/batches"] == 2
        assert rec.counters["serve/kernel_evaluations"] == 1
        assert rec.counters["serve/eval_cache_hits"] == 1

    def test_search_coalesces_and_matches_one_shot(self):
        from repro.search import GeneralizedBinarySearch

        rec = Recorder()
        coordinator = ServeCoordinator(window_seconds=0.005, telemetry=rec)
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        model = build_model(cluster, program)
        expected = GeneralizedBinarySearch(model, cluster).search(budget=25)

        async def main():
            async with _serve_fixture(coordinator) as client:
                identical = [
                    client.search(
                        "jacobi", config="DC", scale=SCALE,
                        algorithm="gbs", budget=25,
                    )
                    for _ in range(4)
                ]
                results = await asyncio.gather(*identical)
                repeat = await client.search(
                    "jacobi", config="DC", scale=SCALE,
                    algorithm="gbs", budget=25,
                )
                return results, repeat

        results, repeat = run(main())
        for result in results + [repeat]:
            assert result["counts"] == list(expected.best.counts)
            assert result["predicted_seconds"] == expected.predicted_seconds
            assert result["evaluations"] == expected.evaluations
        # 4 concurrent identical searches ran the searcher once; the
        # later repeat hit the result cache.
        assert rec.counters["search/runs"] == 1
        assert rec.counters["serve/search_coalesced"] == 3
        assert rec.counters["serve/search_result_hits"] == 1

    def test_verify_matches_emulator_and_fills_disk_tier(self, tmp_path):
        from repro.sim import emulate

        path = tmp_path / "serve-sweep.json"
        sweep = SweepCache(path)
        rec = Recorder()
        coordinator = ServeCoordinator(
            window_seconds=0.005, sweep_cache=sweep, telemetry=rec
        )
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        dist = block(cluster, program.n_rows)

        async def main():
            async with _serve_fixture(coordinator) as client:
                first = await client.verify(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                second = await client.verify(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                return first, second

        first, second = run(main())
        actual = emulate(cluster, program, dist).total_seconds
        assert first["actual_seconds"] == actual
        assert first == second
        assert rec.counters["serve/verify_emulated"] == 1
        assert rec.counters["serve/verify_sweep_hits"] >= 0
        # aclose() saved the disk tier; a fresh process-alike sees it.
        assert path.exists()
        assert SweepCache(path).lookup(cluster, program, dist) is not None

    def test_verify_dynamics_bypasses_sweep_tier(self, tmp_path):
        """A dynamic-scenario verify matches the library emulation, never
        reads or pollutes the static sweep cache, and rejects dynamics on
        other ops."""
        from repro.cluster import dynamics_scenario
        from repro.sim import emulate

        sweep = SweepCache(tmp_path / "serve-sweep.json")
        rec = Recorder()
        coordinator = ServeCoordinator(
            window_seconds=0.01, sweep_cache=sweep, telemetry=rec
        )
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        dist = block(cluster, program.n_rows)

        async def main():
            async with _serve_fixture(coordinator) as client:
                static, drifted = await asyncio.gather(
                    client.verify(
                        "jacobi", config="DC", scale=SCALE, dist="blk"
                    ),
                    client.verify(
                        "jacobi", config="DC", scale=SCALE, dist="blk",
                        dynamics="drift",
                    ),
                )
                bad = await asyncio.gather(
                    client.predict(
                        "jacobi", config="DC", scale=SCALE, dist="blk",
                        dynamics="drift",
                    ),
                    return_exceptions=True,
                )
                return static, drifted, bad[0]

        static, drifted, bad = run(main())
        spec = dynamics_scenario("drift", cluster.n_nodes)
        assert static["actual_seconds"] == emulate(
            cluster, program, dist
        ).total_seconds
        assert drifted["actual_seconds"] == emulate(
            cluster, program, dist, dynamics=spec
        ).total_seconds
        assert drifted["dynamics"] == "drift"
        assert drifted["actual_seconds"] != static["actual_seconds"]
        assert isinstance(bad, ServeError)
        assert rec.counters["serve/verify_dynamic"] == 1
        # The static sweep tier holds only the static actual.
        pair = sweep.lookup(cluster, program, dist)
        assert pair is not None
        assert pair[0] == static["actual_seconds"]

    def test_bad_query_errors_do_not_poison_the_round(self):
        coordinator = ServeCoordinator(window_seconds=0.02)

        async def main():
            async with _serve_fixture(coordinator) as client:
                good = client.predict(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                bad = client.request(
                    {"op": "predict", "app": "nope", "config": "DC"}
                )
                return await asyncio.gather(
                    good, bad, return_exceptions=True
                )

        good, bad = run(main())
        assert isinstance(good, dict) and "predicted_seconds" in good
        assert isinstance(bad, ServeError)

    def test_invalid_distribution_errors_only_its_own_query(self):
        coordinator = ServeCoordinator(window_seconds=0.02)

        async def main():
            async with _serve_fixture(coordinator) as client:
                return await asyncio.gather(
                    client.predict(
                        "jacobi", config="DC", scale=SCALE, dist="blk"
                    ),
                    client.predict(  # counts don't cover n_rows
                        "jacobi", config="DC", scale=SCALE,
                        counts=[1] * 8,
                    ),
                    return_exceptions=True,
                )

        good, bad = run(main())
        assert isinstance(bad, ServeError)
        assert isinstance(good, dict) and good["predicted_seconds"] > 0

    def test_plan_kernel_round_compiles_once(self):
        """A coalesced round against a plan-kernel server compiles one
        evaluation plan per resident (app, config, scale, kernel) model
        — never one per request — and answers match the library path."""
        from repro.core.plan import plan_cache_stats, reset_plan_cache

        reset_plan_cache()
        rec = Recorder()
        coordinator = ServeCoordinator(
            kernel="plan", window_seconds=0.02, telemetry=rec
        )
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        model = build_model(cluster, program, kernel="plan")
        compiles_baseline = plan_cache_stats()["compiles"]

        async def main():
            async with _serve_fixture(coordinator) as client:
                tasks = [
                    client.predict(
                        "jacobi", config="DC", scale=SCALE, dist="blk",
                        kernel="plan",
                    )
                    for _ in range(6)
                ]
                tasks += [
                    client.predict(
                        "jacobi", config="DC", scale=SCALE, dist="bal",
                        kernel="plan",
                    )
                    for _ in range(3)
                ]
                results = await asyncio.gather(*tasks)
                return results, await client.stats()

        results, stats = run(main())
        # One resident model, hence one plan compile for the whole round
        # (model construction is lazy: the library model above has not
        # compiled anything yet).
        assert plan_cache_stats()["compiles"] == compiles_baseline + 1
        assert stats["plan_cache"]["size"] >= 1
        # The library model shares the same fingerprint, so its predict
        # hits the very plan the server compiled.
        one_shot = model.predict(block(cluster, program.n_rows))
        assert plan_cache_stats()["compiles"] == compiles_baseline + 1
        rel = abs(results[0]["predicted_seconds"] - one_shot) / one_shot
        assert rel <= 1e-12

    def test_model_eviction_releases_compiled_plan(self):
        """Evicting a resident model drops its plan from the shared plan
        LRU — dead plans must not crowd out live ones."""
        from repro.core.plan import plan_cache_stats, reset_plan_cache

        reset_plan_cache()
        coordinator = ServeCoordinator(
            kernel="plan", window_seconds=0.005, model_cache_entries=1
        )

        async def main():
            async with _serve_fixture(coordinator) as client:
                await client.predict(
                    "jacobi", config="DC", scale=SCALE, dist="blk",
                )
                first = plan_cache_stats()["size"]
                await client.predict(  # evicts the jacobi model
                    "cg", config="DC", scale=SCALE, dist="blk",
                )
                return first, plan_cache_stats()["size"]

        first, second = run(main())
        assert first == 1
        assert second == 1  # cg's plan resident, jacobi's released

    def test_stats_snapshot_reports_residency(self):
        coordinator = ServeCoordinator(window_seconds=0.005)

        async def main():
            async with _serve_fixture(coordinator) as client:
                await client.predict(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                return await client.stats()

        stats = run(main())
        assert stats["models_resident"] == 1
        (model_stats,) = stats["models"].values()
        assert model_stats["eval_cache_entries"] == 1


# ---------------------------------------------------------------------------
# two server processes sharing the on-disk sweep tier


class TestFleetSharedSweepCache:
    def test_two_processes_saving_interleaved(self, tmp_path):
        path = tmp_path / "shared.json"
        script = (
            "import sys\n"
            "from repro.parallel import SweepCache\n"
            "from repro.distribution import GenBlock\n"
            "tag, value = sys.argv[1], float(sys.argv[2])\n"
            f"cache = SweepCache({str(path)!r})\n"
            "cache.store('cluster', tag, GenBlock([5, 3]), value, value)\n"
            "input()  # hold: both processes have loaded before either saves\n"
            "cache.save()\n"
            "print('saved')\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, tag, value],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            for tag, value in (("a", "1.0"), ("b", "2.0"))
        ]
        for proc in procs:  # release both: saves interleave
            proc.stdin.write("\n")
            proc.stdin.flush()
        for proc in procs:
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "saved" in out
        merged = SweepCache(path)
        assert merged.lookup("cluster", "a", GenBlock([5, 3])) == (1.0, 1.0)
        assert merged.lookup("cluster", "b", GenBlock([5, 3])) == (2.0, 2.0)


# ---------------------------------------------------------------------------
# CLI: repro serve / repro query over a unix socket


class TestServeCli:
    def test_serve_and_query_subprocess(self, tmp_path):
        from repro.serve import ServeClient

        sock = str(tmp_path / "advisor.sock")
        sweep_path = tmp_path / "advisor-sweeps.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", sock, "--window-ms", "1",
                "--sweep-cache", str(sweep_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert server.poll() is None, server.stdout.read()
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)
            with ServeClient(socket_path=sock) as client:
                assert client.ping()["pong"] is True
                result = client.predict(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                assert result["predicted_seconds"] > 0
                verified = client.verify(
                    "jacobi", config="DC", scale=SCALE, dist="blk"
                )
                assert verified["actual_seconds"] > 0
                # Regression: --sweep-cache used to be dropped on the
                # floor (the helper read the sweep command's --cache
                # flag), so the disk tier silently never existed.
                assert client.stats()["sweep_cache"]["size"] == 1
                client.shutdown()
            server.wait(timeout=30)
            assert server.returncode == 0
            # The verify pair was persisted at shutdown.
            assert len(SweepCache(sweep_path)) == 1
        finally:
            if server.poll() is None:  # pragma: no cover - cleanup path
                server.send_signal(signal.SIGKILL)
                server.wait()

    def test_parser_accepts_serve_and_query(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--socket", "/tmp/x.sock", "--window-ms", "5",
             "--batch-mode", "serial", "--max-requests", "3"]
        )
        assert args.command == "serve"
        assert args.batch_mode == "serial"
        args = parser.parse_args(
            ["query", "predict", "jacobi", "--counts", "3,4,5",
             "--port", "7000"]
        )
        assert args.command == "query" and args.op == "predict"
