"""Unit tests for repro.util (units, rng, tables)."""

import numpy as np
import pytest

from repro.util.rng import GLOBAL_SEED, derive_seed, stream
from repro.util.tables import render_series, render_table
from repro.util.units import (
    DOUBLE,
    GIB,
    KIB,
    MIB,
    bytes_to_human,
    gib,
    kib,
    mib,
    seconds_to_human,
)


class TestUnits:
    def test_constants_are_powers_of_two(self):
        assert KIB == 2**10
        assert MIB == 2**20
        assert GIB == 2**30
        assert DOUBLE == 8

    def test_helpers_scale(self):
        assert kib(1) == KIB
        assert mib(2) == 2 * MIB
        assert gib(3) == 3 * GIB

    def test_helpers_accept_fractions(self):
        assert mib(0.5) == MIB // 2

    def test_bytes_to_human_ranges(self):
        assert bytes_to_human(512) == "512 B"
        assert bytes_to_human(1536) == "1.50 KiB"
        assert bytes_to_human(3 * MIB) == "3.00 MiB"
        assert bytes_to_human(int(2.5 * GIB)) == "2.50 GiB"

    def test_seconds_to_human_ranges(self):
        assert "us" in seconds_to_human(5e-6)
        assert "ms" in seconds_to_human(5e-3)
        assert seconds_to_human(12.0) == "12.00 s"
        assert "min" in seconds_to_human(600.0)


class TestRng:
    def test_same_labels_same_stream(self):
        a = stream("x", 1).random(5)
        b = stream("x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = stream("x", 1).random(5)
        b = stream("x", 2).random(5)
        assert not np.array_equal(a, b)

    def test_label_concatenation_is_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_root_seed_changes_everything(self):
        assert derive_seed("x", root=1) != derive_seed("x", root=2)

    def test_seed_is_63_bit_non_negative(self):
        for label in range(50):
            s = derive_seed(label)
            assert 0 <= s < 2**63

    def test_global_seed_is_stable(self):
        # Pinned: changing this re-rolls every experiment in the repo.
        assert GLOBAL_SEED == 20051112

    def test_numeric_vs_string_labels_distinct(self):
        assert derive_seed(1) != derive_seed("1")


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_format(self):
        out = render_table(["x"], [[1.23456]], float_fmt=".1f")
        assert "1.2" in out and "1.23" not in out

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_bools_render_as_words(self):
        out = render_table(["x"], [[True]])
        assert "True" in out


class TestRenderSeries:
    def test_series_columns(self):
        out = render_series("x", [1, 2], {"y": [3.0, 4.0], "z": [5.0, 6.0]})
        assert "y" in out.splitlines()[0]
        assert "z" in out.splitlines()[0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"y": [3.0]})


class TestLRUCache:
    def test_put_get_round_trip(self):
        from repro.util import LRUCache

        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", default=-1) == -1
        assert cache.stats == {
            "size": 1, "maxsize": 4, "hits": 1, "misses": 2, "evictions": 0,
        }

    def test_evicts_least_recently_used(self):
        from repro.util import LRUCache

        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        from repro.util import LRUCache

        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-insert refreshes, so "b" is evicted next
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_get_many_matches_serial_gets(self):
        from repro.util import LRUCache

        cache = LRUCache(8)
        cache.put("a", 1)
        cache.put("c", 3)
        assert cache.get_many(["a", "b", "c"]) == [1, None, 3]
        assert cache.hits == 2
        assert cache.misses == 1
        # "a" and "c" were refreshed, so an insert evicts the untouched key.
        small = LRUCache(2)
        small.put("x", 1)
        small.put("y", 2)
        small.get_many(["x"])
        small.put("z", 3)
        assert "x" in small and "y" not in small

    def test_maxsize_must_be_positive(self):
        from repro.util import LRUCache

        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stored_none_is_a_hit_in_get_many(self):
        # Regression: get_many used to detect misses by comparing the
        # value against None, so a stored None never refreshed recency
        # and was miscounted as a miss.
        from repro.util import LRUCache

        cache = LRUCache(4)
        cache.put("a", None)
        assert cache.get_many(["a"]) == [None]
        assert (cache.hits, cache.misses) == (1, 0)
        # Recency was refreshed, exactly like get(): the None-valued
        # entry survives eviction pressure aimed at older keys.
        small = LRUCache(2)
        small.put("x", None)
        small.put("y", 2)
        small.get_many(["x"])
        small.put("z", 3)
        assert "x" in small and "y" not in small
        # get() and get_many() agree on stored None.
        assert cache.get("a") is None
        assert (cache.hits, cache.misses) == (2, 0)

    def test_threadsafe_mode_survives_concurrent_hammering(self):
        import threading

        from repro.util import LRUCache

        cache = LRUCache(64, threadsafe=True)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = (seed * 31 + i) % 100
                    cache.put(key, key)
                    cache.get(key)
                    cache.get_many([key, (key + 1) % 100])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats
        assert stats["size"] <= 64
        # 4 workers x 500 iterations x 3 lookups (one get + two in
        # get_many) all land in the counters, none lost to races.
        assert stats["hits"] + stats["misses"] == 4 * 500 * 3
