"""Tests for experiment-result serialisation and trace utilities."""

import pytest

from repro.cluster import config_dc
from repro.experiments import fig9_accuracy, run_spectrum
from repro.experiments.export import (
    accuracy_bands_to_dict,
    load_json,
    save_json,
    spectrum_run_from_dict,
    spectrum_run_to_dict,
)
from repro.apps import JacobiApp
from repro.sim.trace import EventRecord, Op, TraceCollector


@pytest.fixture(scope="module")
def small_run():
    program = JacobiApp.paper(scale=0.03).structure.with_iterations(2)
    return run_spectrum(config_dc(), program, steps_per_leg=1)


class TestSpectrumRunExport:
    def test_roundtrip_preserves_everything(self, small_run):
        data = spectrum_run_to_dict(small_run)
        restored = spectrum_run_from_dict(data)
        assert restored == small_run

    def test_summary_matches_properties(self, small_run):
        data = spectrum_run_to_dict(small_run)
        assert data["summary"]["mean_error_percent"] == pytest.approx(
            small_run.mean_error_percent
        )
        assert data["summary"]["best_actual"] == small_run.best_actual.label

    def test_file_roundtrip(self, tmp_path, small_run):
        path = tmp_path / "run.json"
        save_json(spectrum_run_to_dict(small_run), path)
        restored = spectrum_run_from_dict(load_json(path))
        assert restored == small_run

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            spectrum_run_from_dict({"kind": "something-else"})


class TestAccuracyBandsExport:
    def test_bands_exported_with_runs(self):
        bands = fig9_accuracy(
            panel="rna",
            architectures=[config_dc()],
            scale=0.03,
            steps_per_leg=1,
        )
        data = accuracy_bands_to_dict(bands)
        assert data["kind"] == "accuracy_bands"
        assert len(data["labels"]) == len(bands.labels)
        assert len(data["runs"]) == len(bands.runs)
        assert data["overall_average_percent"] == pytest.approx(
            bands.overall_average_percent
        )


def make_record(op=Op.READ, node=0, it=0, var="v", start=0.0, end=1.0):
    return EventRecord(
        op=op,
        node=node,
        iteration=it,
        section="s",
        tile=0,
        stage="st",
        variable=var,
        start=start,
        end=end,
        nbytes=64.0,
    )


class TestTraceCollector:
    def test_filters(self):
        trace = TraceCollector()
        trace(make_record(Op.READ, node=0))
        trace(make_record(Op.WRITE, node=1))
        trace(make_record(Op.READ, node=1, it=2))
        assert len(trace.of_kind(Op.READ)) == 2
        assert len(trace.for_node(1)) == 2
        assert len(trace.for_iteration(2)) == 1

    def test_total_durations(self):
        trace = TraceCollector()
        trace(make_record(Op.COMPUTE, node=0, start=0.0, end=2.0))
        trace(make_record(Op.COMPUTE, node=1, start=0.0, end=3.0))
        assert trace.total(Op.COMPUTE) == pytest.approx(5.0)
        assert trace.total(Op.COMPUTE, node=1) == pytest.approx(3.0)

    def test_duration_property(self):
        record = make_record(start=1.5, end=4.0)
        assert record.duration == pytest.approx(2.5)
