"""Randomised model-vs-emulator agreement.

The reproduction's central invariant: with all ground-truth
perturbations off and perfect timers, MHETA's analytical equations must
agree with the discrete-event emulator *exactly* — for arbitrary program
structures (any mix of communication patterns, tile counts, variable
shapes, prefetching) on arbitrary clusters (any CPU/memory/disk mix) and
arbitrary distributions.  Hypothesis generates the cases.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, NetworkSpec, NodeSpec
from repro.core import MhetaModel
from repro.distribution import GenBlock, largest_remainder_round
from repro.instrument.collect import MeasurementConfig, collect_inputs
from repro.program import ProgramBuilder
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.util.units import mib

IDEAL = PerturbationConfig.none()
PERFECT = MeasurementConfig.perfect()

# -- strategies -------------------------------------------------------------------

node_strategy = st.tuples(
    st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]),  # cpu power
    st.sampled_from([1, 2, 4, 16, 64]),  # memory MiB
    st.sampled_from([0.5, 1.0, 2.0]),  # io scale
)

cluster_strategy = st.lists(node_strategy, min_size=2, max_size=6)


@st.composite
def program_strategy(draw):
    n_rows = draw(st.sampled_from([64, 256, 1024]))
    cols = draw(st.sampled_from([16, 256, 2048]))
    iterations = draw(st.integers(1, 4))
    prefetch = draw(st.booleans())
    builder = ProgramBuilder("random", n_rows=n_rows, iterations=iterations)
    builder.distributed("big", cols=cols, access="read-write")
    builder.distributed("vec", cols=1, access="read-write")
    if draw(st.booleans()):
        builder.replicated("rep", elements=n_rows)
    patterns = draw(
        st.lists(
            st.sampled_from(["nn", "reduce", "allgather", "pipe", "none"]),
            min_size=1,
            max_size=3,
        )
    )
    for i, pattern in enumerate(patterns):
        if pattern == "pipe":
            tiles = draw(st.sampled_from([2, 4]))
            builder.section(f"s{i}", tiles=tiles)
        else:
            builder.section(f"s{i}")
        reads = draw(
            st.sampled_from([["big"], ["big", "vec"], ["vec"]])
        )
        writes = draw(st.sampled_from([[], ["big"], ["vec"]]))
        builder.stage(
            f"st{i}",
            reads=reads,
            writes=writes,
            work_per_row=draw(st.sampled_from([1e-8, 1e-6, 5e-5])),
            fixed_work=draw(st.sampled_from([0.0, 1e-5])),
        )
        nbytes = draw(st.sampled_from([8.0, 4096.0]))
        if pattern == "nn":
            source = draw(st.sampled_from([None, "big"]))
            builder.nearest_neighbor(nbytes, source_variable=source)
        elif pattern == "reduce":
            builder.reduction(nbytes)
        elif pattern == "allgather":
            builder.allgather(nbytes)
        elif pattern == "pipe":
            builder.pipeline(nbytes)
        else:
            builder.no_comm()
    if prefetch:
        builder.prefetching()
    return builder.build()


def make_cluster(spec) -> ClusterSpec:
    nodes = []
    for i, (power, mem, io) in enumerate(spec):
        nodes.append(
            NodeSpec(
                name=f"n{i}",
                cpu_power=power,
                memory_bytes=mib(mem),
                os_cache_bytes=mib(8),
            ).scaled_io(io)
        )
    return ClusterSpec(name="rand", nodes=tuple(nodes), network=NetworkSpec())


@settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    cluster_spec=cluster_strategy,
    program=program_strategy(),
    shares=st.lists(st.floats(0.05, 1.0), min_size=6, max_size=6),
)
def test_exact_agreement_on_random_cases(cluster_spec, program, shares):
    cluster = make_cluster(cluster_spec)
    counts = largest_remainder_round(
        np.array(shares[: cluster.n_nodes]), program.n_rows, minimum=1
    )
    distribution = GenBlock(counts)

    inputs = collect_inputs(
        cluster,
        program,
        distribution,
        perturbation=IDEAL,
        measurement=PERFECT,
    )
    model = MhetaModel(program, cluster, inputs)
    emulator = ClusterEmulator(cluster, program, IDEAL)

    actual = emulator.run(distribution).total_seconds
    predicted = model.predict_seconds(distribution)
    assert predicted == pytest.approx(actual, rel=1e-9, abs=1e-12)


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    cluster_spec=cluster_strategy,
    program=program_strategy(),
    shares_a=st.lists(st.floats(0.05, 1.0), min_size=6, max_size=6),
    shares_b=st.lists(st.floats(0.05, 1.0), min_size=6, max_size=6),
)
def test_cross_distribution_prediction(cluster_spec, program, shares_a, shares_b):
    """Instrument under one distribution, predict a *different* one —
    the model's actual job — still exactly."""
    cluster = make_cluster(cluster_spec)
    d0 = GenBlock(
        largest_remainder_round(
            np.array(shares_a[: cluster.n_nodes]), program.n_rows, minimum=1
        )
    )
    target = GenBlock(
        largest_remainder_round(
            np.array(shares_b[: cluster.n_nodes]), program.n_rows, minimum=1
        )
    )
    inputs = collect_inputs(
        cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
    )
    model = MhetaModel(program, cluster, inputs)
    emulator = ClusterEmulator(cluster, program, IDEAL)
    actual = emulator.run(target).total_seconds
    predicted = model.predict_seconds(target)
    assert predicted == pytest.approx(actual, rel=1e-9, abs=1e-12)
