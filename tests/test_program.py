"""Unit tests for repro.program (variables, stages, sections, builder)."""

import numpy as np
import pytest

from repro.exceptions import ProgramStructureError
from repro.program import (
    Access,
    CommPattern,
    CommSpec,
    ParallelSection,
    ProgramBuilder,
    Stage,
    Variable,
)


class TestVariable:
    def test_distributed_row_bytes(self):
        v = Variable(name="a", cols=100, element_size=8)
        assert v.row_bytes == 800
        assert v.local_bytes(10) == 8000

    def test_replicated_local_bytes_ignores_rows(self):
        v = Variable(name="a", distributed=False, replicated_elements=1000)
        assert v.local_bytes(0) == v.local_bytes(999) == 8000

    def test_writes_back(self):
        ro = Variable(name="a", cols=1, access=Access.READ_ONLY)
        rw = Variable(name="b", cols=1, access=Access.READ_WRITE)
        assert not ro.writes_back
        assert rw.writes_back

    def test_empty_name_raises(self):
        with pytest.raises(ProgramStructureError):
            Variable(name="")

    def test_nonpositive_cols_raises(self):
        with pytest.raises(ProgramStructureError):
            Variable(name="a", cols=0)

    def test_fractional_cols_allowed(self):
        # Multigrid coarse levels use fractional cols.
        v = Variable(name="a", cols=0.25)
        assert v.row_bytes == 2.0


class TestStage:
    def test_touched_preserves_order_dedupes(self):
        s = Stage(name="s", reads=("a", "b"), writes=("b", "c"))
        assert s.touched == ("a", "b", "c")

    def test_work_seconds(self):
        s = Stage(name="s", work_per_row=2.0, fixed_work=1.0)
        assert s.work_seconds(3) == pytest.approx(7.0)  # owns everything
        assert s.work_seconds(3, total_rows=6) == pytest.approx(6.5)

    def test_negative_work_raises(self):
        with pytest.raises(ProgramStructureError):
            Stage(name="s", work_per_row=-1.0)


class TestCommSpec:
    def test_none_with_message_raises(self):
        with pytest.raises(ProgramStructureError):
            CommSpec(pattern=CommPattern.NONE, message_bytes=8)

    def test_negative_bytes_raise(self):
        with pytest.raises(ProgramStructureError):
            CommSpec(pattern=CommPattern.REDUCTION, message_bytes=-1)


class TestParallelSection:
    def _stage(self):
        return Stage(name="s", reads=("a",))

    def test_pipeline_needs_tiles(self):
        with pytest.raises(ProgramStructureError):
            ParallelSection(
                name="p",
                stages=(self._stage(),),
                tiles=1,
                comm=CommSpec(pattern=CommPattern.PIPELINE, message_bytes=8),
            )

    def test_tiles_without_pipeline_raise(self):
        with pytest.raises(ProgramStructureError):
            ParallelSection(
                name="p",
                stages=(self._stage(),),
                tiles=4,
                comm=CommSpec(pattern=CommPattern.REDUCTION, message_bytes=8),
            )

    def test_empty_stages_raise(self):
        with pytest.raises(ProgramStructureError):
            ParallelSection(name="p", stages=())

    def test_duplicate_stage_names_raise(self):
        with pytest.raises(ProgramStructureError):
            ParallelSection(
                name="p", stages=(self._stage(), self._stage())
            )

    def test_touched_includes_comm_source(self):
        sec = ParallelSection(
            name="p",
            stages=(self._stage(),),
            comm=CommSpec(
                pattern=CommPattern.NEAREST_NEIGHBOR,
                message_bytes=8,
                source_variable="ghost",
            ),
        )
        assert "ghost" in sec.touched


class TestProgramBuilder:
    def test_full_build(self, jacobi_like):
        assert jacobi_like.n_rows == 512
        assert len(jacobi_like.sections) == 2
        assert jacobi_like.sections[0].comm.pattern is (
            CommPattern.NEAREST_NEIGHBOR
        )
        assert jacobi_like.sections[1].comm.pattern is CommPattern.REDUCTION

    def test_unknown_variable_raises(self):
        builder = (
            ProgramBuilder("p", n_rows=10, iterations=1)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["missing"])
        )
        with pytest.raises(ProgramStructureError):
            builder.build()

    def test_stage_before_section_raises(self):
        with pytest.raises(ProgramStructureError):
            ProgramBuilder("p", n_rows=10).stage("s")

    def test_unclosed_section_gets_no_comm(self):
        program = (
            ProgramBuilder("p", n_rows=10)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["a"])
            .build()
        )
        assert program.sections[0].comm.pattern is CommPattern.NONE

    def test_prefetch_flag(self):
        program = (
            ProgramBuilder("p", n_rows=10)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["a"])
            .prefetching()
            .build()
        )
        assert program.prefetch


class TestProgramStructure:
    def test_dataset_bytes(self, cg_like):
        a = cg_like.variable("A")
        q = cg_like.variable("q")
        expected = (
            a.local_bytes(cg_like.n_rows)
            + q.local_bytes(cg_like.n_rows)
            + cg_like.variable("p_full").local_bytes(0)
        )
        assert cg_like.dataset_bytes == int(expected)

    def test_replicated_bytes(self, cg_like):
        assert cg_like.replicated_bytes == cg_like.n_rows * 8

    def test_distributed_row_bytes(self, cg_like):
        assert cg_like.distributed_row_bytes() == pytest.approx(16 * 12 + 8)

    def test_variable_lookup_raises_on_unknown(self, jacobi_like):
        with pytest.raises(ProgramStructureError):
            jacobi_like.variable("nope")

    def test_row_weights_normalised(self):
        program = (
            ProgramBuilder("p", n_rows=4)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["a"], work_per_row=1.0)
            .weights(np.array([1.0, 2.0, 3.0, 2.0]))
            .build()
        )
        assert program.row_weights.mean() == pytest.approx(1.0)
        assert program.weight_of_rows(0, 4) == pytest.approx(4.0)

    def test_row_weights_wrong_shape_raises(self):
        builder = (
            ProgramBuilder("p", n_rows=4)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["a"])
            .weights(np.ones(3))
        )
        with pytest.raises(ProgramStructureError):
            builder.build()

    def test_row_weights_nonpositive_raise(self):
        builder = (
            ProgramBuilder("p", n_rows=3)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["a"])
            .weights(np.array([1.0, 0.0, 1.0]))
        )
        with pytest.raises(ProgramStructureError):
            builder.build()

    def test_weight_of_rows_uniform_default(self, jacobi_like):
        assert jacobi_like.weight_of_rows(0, 100) == 100.0

    def test_weight_of_rows_bounds_checked(self, jacobi_like):
        with pytest.raises(ProgramStructureError):
            jacobi_like.weight_of_rows(-1, 5)
        with pytest.raises(ProgramStructureError):
            jacobi_like.weight_of_rows(0, jacobi_like.n_rows + 1)

    def test_with_prefetch_copy(self, jacobi_like):
        pf = jacobi_like.with_prefetch()
        assert pf.prefetch and not jacobi_like.prefetch

    def test_with_iterations_copy(self, jacobi_like):
        assert jacobi_like.with_iterations(7).iterations == 7

    def test_duplicate_variable_names_raise(self):
        builder = (
            ProgramBuilder("p", n_rows=4)
            .distributed("a", cols=1)
            .distributed("a", cols=2)
            .section("s")
            .stage("st", reads=["a"])
        )
        with pytest.raises(ProgramStructureError):
            builder.build()
