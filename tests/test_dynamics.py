"""Tests for time-varying clusters (repro.cluster.dynamics) and the
consolidated keyword-driven emulation API.

The golden guarantees this file pins down:

* ``dynamics=None`` and an attached-but-empty spec are *bitwise*
  identical to the historical static emulator output, and keep the
  steady-state fast path eligible;
* any truthy spec refuses fast-forward (``supports_fast_forward`` says
  no, and the result is never extrapolated);
* dynamic runs are deterministic — repeated scalar runs and the batched
  ``emulate_many`` agree bitwise;
* mid-run segments (``iteration_offset``) replay exactly the factors
  the same global iterations of a continuous run see;
* the deprecated keyword shims still work and warn exactly once;
* the background-load process no longer shares the compute-noise RNG
  stream (toggling ``compute_noise`` must not move the load trajectory).
"""

import warnings

import pytest

from repro.cluster import (
    ClusterSpec,
    CpuDrift,
    DiskDegradation,
    DynamicsSpec,
    LoadTrace,
    NodeEvent,
    NodeLoad,
    DYNAMICS_SCENARIOS,
    baseline_cluster,
    config_dc,
    config_hy1,
    dynamics_scenario,
    dynamics_scenarios,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.apps import application_by_name
from repro.distribution import balanced, block
from repro.sim import PerturbationConfig
from repro.sim.executor import ClusterEmulator, emulate, emulate_many
from repro.sim.perturbation import PerturbationModel
from repro.sim.steady import supports_fast_forward
from repro.runtime import AdaptiveRuntime

SCALE = 0.02


def _program(app="jacobi", scale=SCALE):
    return application_by_name(app, scale).structure


def _drift_spec(n_nodes=8, start=2):
    return dynamics_scenario("drift", n_nodes, start=start)


# ---------------------------------------------------------------------------
# spec construction and validation


class TestSpecs:
    def test_all_named_scenarios_build(self):
        specs = dynamics_scenarios(8)
        assert set(specs) == set(DYNAMICS_SCENARIOS)
        for name, spec in specs.items():
            assert isinstance(spec, DynamicsSpec)
            assert spec.name == name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            dynamics_scenario("meteor-strike")

    def test_stationary_scenario_is_falsy(self):
        spec = dynamics_scenario("stationary")
        assert not spec
        assert spec.stationary

    def test_bad_components_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadTrace(mean=1.5)
        with pytest.raises(ConfigurationError):
            CpuDrift(0, rate=-0.1)
        with pytest.raises(ConfigurationError):
            DiskDegradation(-1, rate=0.1)
        with pytest.raises(ConfigurationError):
            NodeEvent(0, at_iteration=3, kind="explode")

    def test_spec_validates_node_range(self):
        spec = DynamicsSpec(cpu_drift=(CpuDrift(9, rate=0.1),))
        with pytest.raises(ConfigurationError):
            spec.validate(8)
        with pytest.raises(ConfigurationError):
            emulate(
                baseline_cluster(),
                _program(),
                block(baseline_cluster(), _program().n_rows),
                dynamics=spec,
            )

    def test_cluster_attaches_and_detaches_dynamics(self):
        cluster = config_dc()
        spec = _drift_spec()
        dyn = cluster.with_dynamics(spec)
        assert dyn.dynamics is spec
        assert cluster.dynamics is None
        assert dyn.with_dynamics(None).dynamics is None

    def test_drift_factor_shape(self):
        drift = CpuDrift(0, rate=0.5, floor=0.4, start_iteration=10)
        assert drift.factor_at(0) == 1.0
        assert drift.factor_at(10) == 1.0
        assert 0.4 < drift.factor_at(12) < 1.0
        assert drift.factor_at(10_000) == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# golden: static path untouched


class TestStaticBitwiseIdentity:
    @pytest.mark.parametrize("app", ["jacobi", "cg"])
    @pytest.mark.parametrize("make", [config_dc, config_hy1])
    def test_empty_spec_is_bitwise_identical(self, app, make):
        cluster = make()
        program = _program(app)
        d = balanced(cluster, program.n_rows)
        plain = emulate(cluster, program, d, run_cache=False)
        attached = emulate(
            cluster.with_dynamics(DynamicsSpec()), program, d,
            run_cache=False,
        )
        explicit = emulate(
            cluster, program, d, dynamics=DynamicsSpec(), run_cache=False
        )
        assert attached.total_seconds == plain.total_seconds
        assert attached.per_node_seconds == plain.per_node_seconds
        assert explicit.total_seconds == plain.total_seconds
        # The empty spec is stationary: the fast path stays eligible.
        assert attached.fast_forwarded == plain.fast_forwarded

    def test_dynamics_false_forces_static(self):
        cluster = config_dc().with_dynamics(_drift_spec())
        program = _program()
        d = block(cluster, program.n_rows)
        plain = emulate(config_dc(), program, d, run_cache=False)
        forced = emulate(cluster, program, d, dynamics=False, run_cache=False)
        attached = emulate(cluster, program, d, run_cache=False)
        assert forced.total_seconds == plain.total_seconds
        assert attached.total_seconds != plain.total_seconds


# ---------------------------------------------------------------------------
# non-stationarity refuses the fast path


class TestFastForwardRefusal:
    def test_supports_fast_forward_gate(self):
        program = _program()
        quiet = PerturbationConfig.none()
        assert supports_fast_forward(program, quiet)
        assert supports_fast_forward(program, quiet, dynamics=None)
        assert supports_fast_forward(program, quiet, dynamics=DynamicsSpec())
        assert not supports_fast_forward(
            program, quiet, dynamics=_drift_spec()
        )

    def test_dynamic_run_never_fast_forwards(self):
        cluster = config_dc()
        program = _program()
        quiet = PerturbationConfig.none()
        d = block(cluster, program.n_rows)
        static = emulate(
            cluster, program, d, perturbation=quiet, run_cache=False
        )
        assert static.fast_forwarded  # sanity: the static run does
        dyn = emulate(
            cluster, program, d, perturbation=quiet,
            dynamics=_drift_spec(), fast_forward=True, run_cache=False,
        )
        assert not dyn.fast_forwarded

    def test_offset_segment_never_fast_forwards(self):
        cluster = config_dc()
        program = _program()
        d = block(cluster, program.n_rows)
        seg = emulate(
            cluster, program, d, iterations=8, iteration_offset=5,
            run_cache=False,
        )
        assert not seg.fast_forwarded
        with pytest.raises(SimulationError):
            ClusterEmulator(cluster, program).run(d, iteration_offset=-1)


# ---------------------------------------------------------------------------
# determinism and batch equivalence


class TestDynamicDeterminism:
    @pytest.mark.parametrize(
        "scenario", ["drift", "load-spike", "node-loss", "disk-fade"]
    )
    def test_repeat_and_batch_bitwise_equal(self, scenario):
        cluster = config_dc()
        program = _program()
        spec = dynamics_scenario(scenario, cluster.n_nodes, start=2)
        dists = [
            block(cluster, program.n_rows),
            balanced(cluster, program.n_rows),
        ]
        first = [
            emulate(cluster, program, d, dynamics=spec, run_cache=False)
            for d in dists
        ]
        again = [
            emulate(cluster, program, d, dynamics=spec, run_cache=False)
            for d in dists
        ]
        batch = emulate_many(
            cluster, program, dists, dynamics=spec, run_cache=False
        )
        for a, b, c in zip(first, again, batch):
            assert a.total_seconds == b.total_seconds == c.total_seconds
            assert a.per_node_seconds == c.per_node_seconds

    def test_node_loss_slows_the_lost_node(self):
        cluster = config_dc()
        program = _program()
        spec = dynamics_scenario("node-loss", cluster.n_nodes, start=2)
        d = balanced(cluster, program.n_rows)
        static = emulate(cluster, program, d, run_cache=False)
        lost = emulate(cluster, program, d, dynamics=spec, run_cache=False)
        assert lost.total_seconds > static.total_seconds
        victim = spec.events[0].node
        assert (
            lost.per_node_seconds[victim] > static.per_node_seconds[victim]
        )


# ---------------------------------------------------------------------------
# segment replay


class TestSegmentReplay:
    def test_timeline_slices_replay_global_factors(self):
        spec = dynamics_scenario("load-spike", 8, start=3)
        full = spec.compile(8, 40, 0)
        tail = spec.compile(8, 25, 15)
        for rank in (0, 4):
            for it in (15, 20, 39):
                assert full.compute_multiplier(rank, it) == pytest.approx(
                    tail.compute_multiplier(rank, it), rel=0, abs=0
                )
                assert full.disk_slowdown(rank, it) == tail.disk_slowdown(
                    rank, it
                )

    def test_segment_emulation_sees_global_conditions(self):
        cluster = config_dc()
        program = _program()
        spec = _drift_spec(start=6)
        d = block(cluster, program.n_rows)
        # Before the disturbance begins the segment is static-identical;
        # after it begins the same segment length costs strictly more.
        pre = emulate(
            cluster, program, d, dynamics=spec, iterations=4,
            iteration_offset=0, run_cache=False,
        )
        static = emulate(
            cluster, program, d, iterations=4, fast_forward=False,
            run_cache=False,
        )
        post = emulate(
            cluster, program, d, dynamics=spec, iterations=4,
            iteration_offset=50, run_cache=False,
        )
        assert pre.total_seconds == static.total_seconds
        assert post.total_seconds > pre.total_seconds

    def test_effective_cluster_snapshot(self):
        cluster = config_dc()
        spec = _drift_spec(start=0)
        snap = spec.effective_cluster(cluster, 100)
        assert snap.dynamics is None
        assert isinstance(snap, ClusterSpec)
        for comp in spec.cpu_drift:
            assert (
                snap.nodes[comp.node].cpu_power
                < cluster.nodes[comp.node].cpu_power
            )


# ---------------------------------------------------------------------------
# deprecated keyword shims


class TestDeprecationShims:
    def _single_warning(self, record):
        deps = [w for w in record if issubclass(w.category, DeprecationWarning)]
        return deps

    def test_emulate_instrumented_alias(self):
        from repro.obs import deprecation

        cluster = config_dc()
        program = _program()
        d = block(cluster, program.n_rows)
        golden = emulate(
            cluster, program, d, io_mode="instrumented", iterations=1,
            run_cache=False,
        )
        deprecation._WARNED.discard("emulate(instrumented=)")
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = emulate(
                cluster, program, d, instrumented=True, iterations=1,
                run_cache=False,
            )
            legacy2 = emulate(
                cluster, program, d, instrumented=True, iterations=1,
                run_cache=False,
            )
        assert legacy.total_seconds == golden.total_seconds
        assert legacy2.total_seconds == golden.total_seconds
        assert len(self._single_warning(record)) == 1  # warns once

    def test_run_instrumented_alias(self):
        from repro.obs import deprecation

        cluster = config_dc()
        program = _program()
        d = block(cluster, program.n_rows)
        emulator = ClusterEmulator(cluster, program)
        golden = emulator.run(d, io_mode="instrumented", iterations=1)
        deprecation._WARNED.discard("ClusterEmulator.run(instrumented=)")
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = emulator.run(d, instrumented=True, iterations=1)
        assert legacy.total_seconds == golden.total_seconds
        assert len(self._single_warning(record)) == 1

    def test_cache_alias(self):
        from repro.obs import deprecation
        from repro.parallel import verify_distributions

        cluster = config_dc()
        program = _program()
        dists = [block(cluster, program.n_rows)]
        golden = verify_distributions(
            cluster, program, dists, run_cache=False
        )
        deprecation._WARNED.discard("verify_distributions(cache=)")
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = verify_distributions(cluster, program, dists, cache=False)
        assert legacy == golden
        assert len(self._single_warning(record)) == 1

    def test_unknown_io_mode_rejected(self):
        cluster = config_dc()
        program = _program()
        d = block(cluster, program.n_rows)
        with pytest.raises(SimulationError):
            emulate(cluster, program, d, io_mode="psychic")


# ---------------------------------------------------------------------------
# perturbation decoupling (satellite fix)


class TestBackgroundLoadDecoupling:
    def test_toggling_noise_does_not_move_the_load_trajectory(self):
        labels = ("clusterX", "progY", "dist", 3)
        loaded = PerturbationConfig(background_load=0.3)
        with_noise = PerturbationModel(loaded, labels)
        without_noise = PerturbationModel(
            loaded.without(compute_noise=False), labels
        )
        # Interleave unrelated noise draws: the load stream must not care.
        seq_a, seq_b = [], []
        for _ in range(32):
            with_noise.noise_factor()
            seq_a.append(with_noise.background_factor())
            seq_b.append(without_noise.background_factor())
        assert seq_a == seq_b
        assert any(f != 1.0 for f in seq_a)

    def test_dedicated_runs_draw_no_load_rng(self):
        model = PerturbationModel(PerturbationConfig(), ("a", "b"))
        assert model.background_factor() == 1.0
        assert model._load is None


# ---------------------------------------------------------------------------
# adaptive runtime under dynamics


class TestAdaptiveDynamics:
    def test_multi_round_report_under_drift(self):
        cluster = config_dc()
        app = application_by_name("jacobi", SCALE)
        spec = dynamics_scenario("drift", cluster.n_nodes, start=10)
        runtime = AdaptiveRuntime(
            cluster,
            app.structure,
            search_budget=40,
            dynamics=spec,
            check_interval=8,
            drift_threshold=0.2,
        )
        report = runtime.run()
        assert report.n_rounds >= 1
        assert report.rounds[0].trigger == "start"
        assert report.rounds[0].at_iteration == 0
        # Every round burns one instrumented iteration; the segments
        # cover the rest — together they account for the whole job.
        total_segments = sum(r.iterations for r in report.rounds)
        assert total_segments + report.n_rounds == app.structure.iterations
        assert report.adaptive_seconds > 0
        desc = report.describe()
        assert "round" in desc or report.n_rounds == 1

    def test_stationary_dynamics_matches_static_runtime(self):
        cluster = config_hy1()
        app = application_by_name("jacobi", SCALE)
        static = AdaptiveRuntime(
            cluster, app.structure, search_budget=30
        ).run()
        stationary = AdaptiveRuntime(
            cluster,
            app.structure,
            search_budget=30,
            dynamics=dynamics_scenario("stationary", cluster.n_nodes),
        ).run()
        # search_wall_seconds is real wall clock (nondeterministic);
        # every emulated component must match bitwise.
        assert stationary.instrumented_seconds == static.instrumented_seconds
        assert stationary.remaining_seconds == static.remaining_seconds
        assert (
            stationary.redistribution_seconds == static.redistribution_seconds
        )
        assert stationary.static_seconds == static.static_seconds
        assert stationary.chosen_distribution == static.chosen_distribution
        assert stationary.n_rounds == static.n_rounds == 1

    def test_bad_knobs_rejected(self):
        cluster = config_dc()
        program = _program()
        with pytest.raises(ValueError):
            AdaptiveRuntime(cluster, program, check_interval=0)
        with pytest.raises(ValueError):
            AdaptiveRuntime(cluster, program, drift_threshold=-1.0)
