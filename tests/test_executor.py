"""Integration-level tests of the cluster emulator."""

import pytest

from repro.distribution import GenBlock, block
from repro.exceptions import SimulationError
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.sim.trace import Op, TraceCollector
from repro.util.units import mib
from tests.conftest import make_cg_like, make_jacobi_like, make_pipeline_like

IDEAL = PerturbationConfig.none()


class TestBasicExecution:
    def test_total_positive_and_iterations_recorded(self, base_cluster, jacobi_like):
        em = ClusterEmulator(base_cluster, jacobi_like, IDEAL)
        res = em.run(block(base_cluster, jacobi_like.n_rows))
        assert res.total_seconds > 0
        assert len(res.iteration_ends[0]) == jacobi_like.iterations

    def test_iteration_durations_sum_to_node_total(self, base_cluster, jacobi_like):
        em = ClusterEmulator(base_cluster, jacobi_like, IDEAL)
        res = em.run(block(base_cluster, jacobi_like.n_rows))
        for node in range(base_cluster.n_nodes):
            assert sum(res.iteration_durations(node)) == pytest.approx(
                res.per_node_seconds[node]
            )

    def test_deterministic_with_fixed_seeds(self, base_cluster, jacobi_like):
        d = block(base_cluster, jacobi_like.n_rows)
        a = ClusterEmulator(base_cluster, jacobi_like).run(d).total_seconds
        b = ClusterEmulator(base_cluster, jacobi_like).run(d).total_seconds
        assert a == b

    def test_more_work_takes_longer(self, base_cluster):
        small = make_jacobi_like(n_rows=256, iterations=2)
        large = make_jacobi_like(n_rows=1024, iterations=2)
        d_small = block(base_cluster, 256)
        d_large = block(base_cluster, 1024)
        t_small = ClusterEmulator(base_cluster, small, IDEAL).run(d_small)
        t_large = ClusterEmulator(base_cluster, large, IDEAL).run(d_large)
        assert t_large.total_seconds > t_small.total_seconds

    def test_slow_cpu_slows_run(self, base_cluster, jacobi_like):
        slow = base_cluster.replace_node(
            0, base_cluster[0].with_(cpu_power=0.25)
        )
        d = block(base_cluster, jacobi_like.n_rows)
        t_base = ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(d)
        t_slow = ClusterEmulator(slow, jacobi_like, IDEAL).run(d)
        assert t_slow.total_seconds > t_base.total_seconds

    def test_iterations_override(self, base_cluster, jacobi_like):
        em = ClusterEmulator(base_cluster, jacobi_like, IDEAL)
        d = block(base_cluster, jacobi_like.n_rows)
        one = em.run(d, iterations=1)
        assert len(one.iteration_ends[0]) == 1


class TestValidation:
    def test_wrong_node_count_raises(self, base_cluster, jacobi_like):
        em = ClusterEmulator(base_cluster, jacobi_like, IDEAL)
        with pytest.raises(SimulationError):
            em.run(GenBlock([jacobi_like.n_rows]))

    def test_wrong_row_total_raises(self, base_cluster, jacobi_like):
        em = ClusterEmulator(base_cluster, jacobi_like, IDEAL)
        with pytest.raises(SimulationError):
            em.run(block(base_cluster, jacobi_like.n_rows + 1))


class TestOutOfCoreExecution:
    def _small_memory(self, cluster, megs=2):
        return cluster.with_nodes(
            [n.with_(memory_bytes=mib(megs)) for n in cluster.nodes],
            name="small",
        )

    def test_ooc_produces_reads_and_writes(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=2)
        cluster = self._small_memory(base_cluster)
        trace = TraceCollector()
        ClusterEmulator(cluster, program, IDEAL).run(
            block(cluster, program.n_rows), observer=trace
        )
        assert trace.of_kind(Op.READ)
        assert trace.of_kind(Op.WRITE)  # grid is read-write

    def test_in_core_produces_no_io(self, base_cluster, jacobi_like):
        trace = TraceCollector()
        ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(
            block(base_cluster, jacobi_like.n_rows), observer=trace
        )
        assert not trace.of_kind(Op.READ)
        assert not trace.of_kind(Op.WRITE)

    def test_read_only_variable_never_written(self, base_cluster, cg_like):
        cluster = self._small_memory(base_cluster, megs=1)
        trace = TraceCollector()
        ClusterEmulator(cluster, cg_like, IDEAL).run(
            block(cluster, cg_like.n_rows), observer=trace
        )
        writes_a = [r for r in trace.of_kind(Op.WRITE) if r.variable == "A"]
        assert not writes_a

    def test_ooc_slower_than_in_core(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=2)
        d = block(base_cluster, program.n_rows)
        fast = ClusterEmulator(base_cluster, program, IDEAL).run(d)
        slow = ClusterEmulator(
            self._small_memory(base_cluster), program, IDEAL
        ).run(d)
        assert slow.total_seconds > fast.total_seconds

    def test_io_bytes_cover_whole_local_array(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=2)
        cluster = self._small_memory(base_cluster)
        trace = TraceCollector()
        ClusterEmulator(cluster, program, IDEAL).run(
            block(cluster, program.n_rows), observer=trace
        )
        grid = program.variable("grid")
        rows0 = program.n_rows // 8
        expected = rows0 * grid.row_bytes  # per stage pass
        node0_sweep_reads = sum(
            r.nbytes
            for r in trace.of_kind(Op.READ)
            if r.node == 0
            and r.variable == "grid"
            and r.iteration == 0
            and r.section == "sweep"
            and r.stage is not None
        )
        assert node0_sweep_reads == pytest.approx(expected)


class TestPrefetchExecution:
    def test_prefetch_not_slower(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=2)
        cluster = base_cluster.with_nodes(
            [n.with_(memory_bytes=mib(1)) for n in base_cluster.nodes]
        )
        d = block(cluster, program.n_rows)
        sync = ClusterEmulator(cluster, program, IDEAL).run(d)
        pf = ClusterEmulator(cluster, program.with_prefetch(), IDEAL).run(d)
        assert pf.total_seconds <= sync.total_seconds * 1.001

    def test_prefetch_emits_issue_and_wait(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=1)
        cluster = base_cluster.with_nodes(
            [n.with_(memory_bytes=mib(1)) for n in base_cluster.nodes]
        )
        trace = TraceCollector()
        ClusterEmulator(cluster, program.with_prefetch(), IDEAL).run(
            block(cluster, program.n_rows), observer=trace
        )
        assert trace.of_kind(Op.PREFETCH_ISSUE)
        assert trace.of_kind(Op.PREFETCH_WAIT)

    def test_instrumented_run_forces_blocking(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=1)
        trace = TraceCollector()
        ClusterEmulator(base_cluster, program.with_prefetch(), IDEAL).run(
            block(base_cluster, program.n_rows),
            observer=trace,
            instrumented=True,
            iterations=1,
        )
        assert not trace.of_kind(Op.PREFETCH_ISSUE)
        assert trace.of_kind(Op.READ)  # forced out of core


class TestCommunicationPatterns:
    def test_nearest_neighbor_counts(self, base_cluster, jacobi_like):
        trace = TraceCollector()
        ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(
            block(base_cluster, jacobi_like.n_rows),
            observer=trace,
            iterations=1,
        )
        sweep_sends = [
            r for r in trace.of_kind(Op.SEND) if r.section == "sweep"
        ]
        # Edge nodes send 1, middle nodes 2: 2*1 + 6*2 = 14.
        assert len(sweep_sends) == 14

    def test_pipeline_messages_per_tile(self, base_cluster, pipeline_like):
        trace = TraceCollector()
        ClusterEmulator(base_cluster, pipeline_like, IDEAL).run(
            block(base_cluster, pipeline_like.n_rows),
            observer=trace,
            iterations=1,
        )
        sends = trace.of_kind(Op.SEND)
        # 7 sending nodes x 4 tiles.
        assert len(sends) == 28

    def test_pipeline_downstream_finishes_later(self, base_cluster, pipeline_like):
        em = ClusterEmulator(base_cluster, pipeline_like, IDEAL)
        res = em.run(block(base_cluster, pipeline_like.n_rows))
        assert res.per_node_seconds[-1] >= res.per_node_seconds[0]

    def test_reduction_synchronises_iteration_times(self, base_cluster, jacobi_like):
        em = ClusterEmulator(base_cluster, jacobi_like, IDEAL)
        res = em.run(block(base_cluster, jacobi_like.n_rows))
        # All nodes finish each iteration within one broadcast depth.
        ends = [res.iteration_ends[n][0] for n in range(8)]
        assert max(ends) - min(ends) < 0.01

    def test_collective_records(self, base_cluster, cg_like):
        trace = TraceCollector()
        ClusterEmulator(base_cluster, cg_like, IDEAL).run(
            block(base_cluster, cg_like.n_rows), observer=trace, iterations=1
        )
        collectives = trace.of_kind(Op.COLLECTIVE)
        # One record per node per collective section (allgather + reduce).
        assert len(collectives) == 8 * 2

    def test_single_node_cluster_runs(self, jacobi_like):
        from repro.cluster import baseline_cluster

        solo = baseline_cluster(name="solo", n_nodes=1)
        res = ClusterEmulator(solo, jacobi_like, IDEAL).run(
            GenBlock([jacobi_like.n_rows])
        )
        assert res.total_seconds > 0


class TestPerturbations:
    def test_noise_changes_result(self, base_cluster, jacobi_like):
        d = block(base_cluster, jacobi_like.n_rows)
        ideal = ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(d)
        noisy = ClusterEmulator(
            base_cluster,
            jacobi_like,
            PerturbationConfig.none().without(compute_noise=True),
        ).run(d)
        assert noisy.total_seconds != ideal.total_seconds

    def test_noise_is_small(self, base_cluster, jacobi_like):
        d = block(base_cluster, jacobi_like.n_rows)
        ideal = ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(d)
        noisy = ClusterEmulator(
            base_cluster,
            jacobi_like,
            PerturbationConfig.none().without(compute_noise=True),
        ).run(d)
        ratio = noisy.total_seconds / ideal.total_seconds
        assert 0.95 < ratio < 1.05

    def test_sparse_weights_shift_load(self, base_cluster):
        import numpy as np

        from repro.program import ProgramBuilder

        n = 1024
        weights = np.ones(n)
        weights[: n // 8] = 3.0  # node 0's rows are heavy
        program = (
            ProgramBuilder("skewed", n_rows=n, iterations=2)
            .distributed("a", cols=64, access="read-only")
            .section("s")
            .stage("st", reads=["a"], work_per_row=1e-5)
            .reduction(8)
            .weights(weights)
            .build()
        )
        d = block(base_cluster, n)
        uniform = ClusterEmulator(
            base_cluster,
            program,
            PerturbationConfig.none(),
        ).run(d)
        skewed = ClusterEmulator(
            base_cluster,
            program,
            PerturbationConfig.none().without(sparse_weights=True),
        ).run(d)
        assert skewed.total_seconds > uniform.total_seconds
