"""Adaptive runtime across application shapes and options."""

import pytest

from repro.cluster import config_dc, config_io
from repro.runtime import AdaptiveRuntime
from repro.search import GeneticSearch
from repro.apps import RnaPipelineApp, application_by_name
from repro.experiments import build_model

SCALE = 0.08


class TestAdaptiveAcrossApps:
    @pytest.mark.parametrize("app_name", ["cg", "lanczos", "rna"])
    def test_adaptive_never_hurts_remaining_iterations(self, app_name):
        """Whatever the runtime decides, the iterations it actually runs
        are at least as fast per iteration as the static baseline's."""
        cluster = config_dc()
        program = application_by_name(app_name, SCALE).structure
        report = AdaptiveRuntime(cluster, program).run()
        remaining = max(program.iterations - 1, 0)
        if remaining == 0:
            pytest.skip("single-iteration program")
        per_iter_adaptive = report.remaining_seconds / remaining
        per_iter_static = report.static_seconds / program.iterations
        assert per_iter_adaptive <= per_iter_static * 1.05

    def test_pipeline_program_switches_on_dc(self):
        cluster = config_dc()
        program = RnaPipelineApp.paper(SCALE).structure
        report = AdaptiveRuntime(cluster, program).run()
        assert report.switched
        # The chosen layout's iterations beat static Blk's.
        remaining = program.iterations - 1
        assert (
            report.remaining_seconds / remaining
            < report.static_seconds / program.iterations
        )

    def test_custom_search_algorithm_injected(self):
        cluster = config_dc()
        program = application_by_name("jacobi", SCALE).structure
        model = build_model(cluster, program)
        runtime = AdaptiveRuntime(
            cluster,
            program,
            search=GeneticSearch(model, population=6, generations=4),
            search_budget=40,
        )
        report = runtime.run()
        assert report.search_evaluations <= 40

    def test_safety_factor_blocks_marginal_switches(self):
        """With an absurd safety factor the runtime never switches."""
        cluster = config_io()
        program = application_by_name("jacobi", SCALE).structure
        report = AdaptiveRuntime(
            cluster, program, safety_factor=1e9
        ).run()
        assert not report.switched
        assert report.redistribution_seconds == 0.0
