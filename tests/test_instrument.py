"""Unit tests for repro.instrument (hooks, microbench, inputs, collect)."""

import pytest

from repro.distribution import block
from repro.exceptions import InstrumentationError, ModelError
from repro.instrument import (
    HookRegistry,
    MhetaInputs,
    NodeCosts,
    StageCost,
    VariableIOCost,
    collect_inputs,
    run_microbenchmarks,
)
from repro.instrument.collect import MeasurementConfig
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.sim.trace import EventRecord, Op
from repro.util.units import mib
from tests.conftest import make_cg_like, make_jacobi_like

IDEAL = PerturbationConfig.none()


def record(op=Op.READ, node=0, var="v", duration=1.0):
    return EventRecord(
        op=op,
        node=node,
        iteration=0,
        section="s",
        tile=0,
        stage="st",
        variable=var,
        start=0.0,
        end=duration,
        nbytes=8.0,
    )


class TestHookRegistry:
    def test_dispatch_by_kind(self):
        hooks = HookRegistry()
        seen = []
        hooks.register(Op.READ, seen.append)
        hooks(record(Op.READ))
        hooks(record(Op.WRITE))
        assert len(seen) == 1

    def test_catch_all(self):
        hooks = HookRegistry()
        seen = []
        hooks.register_all(seen.append)
        hooks(record(Op.READ))
        hooks(record(Op.WRITE))
        assert len(seen) == 2

    def test_unregister(self):
        hooks = HookRegistry()
        seen = []
        hooks.register(Op.READ, seen.append)
        hooks.unregister(Op.READ, seen.append)
        hooks(record(Op.READ))
        assert not seen

    def test_unregister_missing_is_noop(self):
        HookRegistry().unregister(Op.READ, lambda r: None)


class TestMicrobenchmarks:
    def test_network_parameters_recovered(self, base_cluster):
        micro = run_microbenchmarks(base_cluster)
        net = base_cluster.network
        assert micro.send_overhead == pytest.approx(net.send_overhead, rel=1e-9)
        assert micro.recv_overhead == pytest.approx(net.recv_overhead, rel=1e-9)
        assert micro.byte_latency == pytest.approx(
            net.latency_per_byte, rel=1e-9
        )
        assert micro.fixed_latency == pytest.approx(
            net.fixed_latency, rel=1e-6
        )

    def test_disk_parameters_recovered(self, hetero_cluster):
        micro = run_microbenchmarks(hetero_cluster)
        for bench, node in zip(micro.disks, hetero_cluster.nodes):
            assert bench.read_seek == pytest.approx(node.disk_read_seek, rel=1e-9)
            assert bench.write_seek == pytest.approx(
                node.disk_write_seek, rel=1e-9
            )
            assert bench.read_byte_latency == pytest.approx(
                1.0 / node.disk_read_bw, rel=1e-9
            )
            assert bench.write_byte_latency == pytest.approx(
                1.0 / node.disk_write_bw, rel=1e-9
            )

    def test_transfer_estimate(self, base_cluster):
        micro = run_microbenchmarks(base_cluster)
        net = base_cluster.network
        assert micro.transfer_seconds(12345) == pytest.approx(
            net.transfer_seconds(12345), rel=1e-6
        )

    def test_single_node_cluster(self):
        from repro.cluster import baseline_cluster

        micro = run_microbenchmarks(baseline_cluster(n_nodes=1))
        assert micro.send_overhead == 0.0
        assert len(micro.disks) == 1


class TestCollect:
    def test_every_stage_measured(self, base_cluster, jacobi_like):
        d0 = block(base_cluster, jacobi_like.n_rows)
        inputs = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        for node_costs in inputs.nodes:
            assert node_costs.stage_cost("sweep", "update") is not None
            assert node_costs.stage_cost("residual", "norm") is not None

    def test_forced_io_measures_in_core_variables(self, base_cluster, jacobi_like):
        # Under Blk everything fits in memory, yet I/O costs must exist
        # (paper: all nodes are forced to perform I/O when instrumented).
        d0 = block(base_cluster, jacobi_like.n_rows)
        inputs = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        for node_costs in inputs.nodes:
            assert "grid" in node_costs.io
            io = node_costs.io["grid"]
            assert io.read_seconds_per_byte > 0
            assert io.write_seconds_per_byte > 0  # grid is read-write

    def test_read_only_variable_has_no_write_latency(self, base_cluster, cg_like):
        d0 = block(base_cluster, cg_like.n_rows)
        inputs = collect_inputs(
            base_cluster, cg_like, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        a_cost = inputs.nodes[0].io["A"]
        assert a_cost.read_seconds_per_byte > 0
        assert a_cost.write_seconds_per_byte == 0.0

    def test_latencies_match_disk_speed(self, base_cluster, jacobi_like):
        d0 = block(base_cluster, jacobi_like.n_rows)
        inputs = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        node = base_cluster[0]
        measured = inputs.nodes[0].io["grid"].read_seconds_per_byte
        assert measured == pytest.approx(1.0 / node.disk_read_bw, rel=0.05)

    def test_measurement_bias_inflates_costs(self, base_cluster, jacobi_like):
        d0 = block(base_cluster, jacobi_like.n_rows)
        perfect = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        biased = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL,
            measurement=MeasurementConfig(
                relative_bias=0.05, relative_sigma=0.0, timer_overhead=0.0
            ),
        )
        key = NodeCosts.stage_key("sweep", "update")
        assert biased.nodes[0].stages[key].compute_seconds > (
            perfect.nodes[0].stages[key].compute_seconds
        )

    def test_prefetch_program_records_overlap(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=1)
        pf = program.with_prefetch()
        d0 = block(base_cluster, pf.n_rows)
        inputs = collect_inputs(
            base_cluster, pf, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        key = NodeCosts.stage_key("sweep", "update")
        cost = inputs.nodes[0].stages[key]
        assert cost.blocks_measured >= 2
        assert cost.overlap_per_block > 0.0

    def test_wrong_distribution_raises(self, base_cluster, jacobi_like):
        bad = block(base_cluster, jacobi_like.n_rows + 8)
        with pytest.raises(InstrumentationError):
            collect_inputs(base_cluster, jacobi_like, bad)

    def test_micro_reuse(self, base_cluster, jacobi_like):
        micro = run_microbenchmarks(base_cluster)
        d0 = block(base_cluster, jacobi_like.n_rows)
        inputs = collect_inputs(
            base_cluster, jacobi_like, d0, micro=micro, perturbation=IDEAL
        )
        assert inputs.micro is micro


class TestMhetaInputsSerialisation:
    def _roundtrip(self, base_cluster, program):
        d0 = block(base_cluster, program.n_rows)
        inputs = collect_inputs(
            base_cluster, program, d0, perturbation=IDEAL,
            measurement=MeasurementConfig.perfect(),
        )
        return inputs, MhetaInputs.from_json(inputs.to_json())

    def test_json_roundtrip(self, base_cluster, jacobi_like):
        original, restored = self._roundtrip(base_cluster, jacobi_like)
        assert restored == original

    def test_file_roundtrip(self, tmp_path, base_cluster, cg_like):
        d0 = block(base_cluster, cg_like.n_rows)
        inputs = collect_inputs(
            base_cluster, cg_like, d0, perturbation=IDEAL
        )
        path = tmp_path / "mheta.json"
        inputs.save(path)
        assert MhetaInputs.load(path) == inputs

    def test_node_count_mismatch_raises(self):
        with pytest.raises(ModelError):
            MhetaInputs(
                program_name="p",
                prefetch=False,
                distribution0=(1, 2),
                micro=_dummy_micro(),
                nodes=(NodeCosts(rows0=1, stages={}, io={}),),
            )


def _dummy_micro():
    from repro.instrument.microbench import Microbenchmarks, NodeDiskBench

    return Microbenchmarks(
        send_overhead=0.0,
        recv_overhead=0.0,
        byte_latency=0.0,
        fixed_latency=0.0,
        prefetch_issue_overhead=0.0,
        disks=(NodeDiskBench(0.0, 0.0, 0.0, 0.0),),
    )


class TestCostRecords:
    def test_stage_key_format(self):
        assert NodeCosts.stage_key("a", "b") == "a/b"

    def test_stage_cost_lookup(self):
        costs = NodeCosts(
            rows0=10,
            stages={"a/b": StageCost(compute_seconds=1.0)},
            io={},
        )
        assert costs.stage_cost("a", "b").compute_seconds == 1.0
        assert costs.stage_cost("a", "missing") is None

    def test_variable_io_cost_fields(self):
        cost = VariableIOCost(
            read_seconds_per_byte=1e-8,
            write_seconds_per_byte=2e-8,
            bytes_observed=100.0,
            accesses_observed=3,
        )
        assert cost.read_seconds_per_byte < cost.write_seconds_per_byte
