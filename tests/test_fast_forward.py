"""Golden fast-forward equivalence suite plus run-cache semantics.

The steady-state fast path (`repro.sim.steady`) must be an *invisible*
optimisation: on every seed application x cluster combination, sync and
prefetching, the extrapolated ``RunResult`` has to match full
event-by-event simulation to <= 1e-9 relative on the total, every
node's finish time and every iteration end — and any run the fast path
cannot honestly reproduce (perturbed, observed, instrumented,
non-uniform iterations, non-converging) must silently fall back to the
full simulation, bit for bit.
"""

import numpy as np
import pytest

import repro.sim.executor as executor_mod
from repro.apps import (
    ConjugateGradientApp,
    JacobiApp,
    LanczosApp,
    MultigridApp,
    RnaPipelineApp,
)
from repro.cluster import table1_configs
from repro.distribution import block
from repro.parallel.cache import RunCache
from repro.sim import (
    ClusterEmulator,
    FastForwardPolicy,
    PerturbationConfig,
    emulate,
    fast_forward_default,
    set_fast_forward_default,
    supports_fast_forward,
)
from repro.sim.steady import extrapolate_ends, steady_deltas
from repro.sim.trace import TraceCollector

SCALE = 0.05
ITERATIONS = 16  # > probe window (default policy simulates 7)
APPS = {
    "jacobi": JacobiApp,
    "cg": ConjugateGradientApp,
    "lanczos": LanczosApp,
    "rna": RnaPipelineApp,
    "multigrid": MultigridApp,
}

#: Deterministic-but-rich ground truth: every iteration-invariant
#: effect stays on (cache effects, OS read cache, sparse weights,
#: runtime overhead); only the stochastic computation noise is off.
DETERMINISTIC = PerturbationConfig().without(compute_noise=False)


def _rel_close(a, b, tol=1e-9):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    scale = np.maximum(np.abs(a), 1e-300)
    return float(np.max(np.abs(a - b) / scale)) <= tol


def _run_pair(cluster, program, perturbation=DETERMINISTIC):
    emulator = ClusterEmulator(cluster, program, perturbation)
    d = block(cluster, program.n_rows)
    full = emulator.run(d, fast_forward=False)
    fast = emulator.run(d, fast_forward=True)
    return full, fast


class TestGoldenEquivalence:
    """Fast-forward vs full simulation over the whole seed grid."""

    @pytest.mark.parametrize("config", ["DC", "IO", "HY1", "HY2"])
    @pytest.mark.parametrize("app", sorted(APPS))
    @pytest.mark.parametrize("io_mode", ["sync", "prefetch"])
    def test_matches_full_simulation(self, config, app, io_mode):
        cluster = table1_configs()[config]
        application = APPS[app].paper(SCALE)
        program = (
            application.prefetching()
            if io_mode == "prefetch"
            else application.structure
        ).with_iterations(ITERATIONS)
        full, fast = _run_pair(cluster, program)

        assert not full.fast_forwarded
        assert fast.fast_forwarded, "fast path should engage on this grid"
        assert _rel_close(full.total_seconds, fast.total_seconds)
        assert _rel_close(full.per_node_seconds, fast.per_node_seconds)
        assert len(fast.iteration_ends) == len(full.iteration_ends)
        for full_ends, fast_ends in zip(
            full.iteration_ends, fast.iteration_ends
        ):
            assert len(fast_ends) == len(full_ends) == ITERATIONS
            assert _rel_close(full_ends, fast_ends)

    def test_total_is_max_of_per_node(self):
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        _, fast = _run_pair(cluster, program)
        assert fast.total_seconds == max(fast.per_node_seconds)
        assert fast.iterations == ITERATIONS


class TestFallbacks:
    """Runs the fast path must not touch fall back to full simulation."""

    def _cluster_program(self):
        cluster = table1_configs()["HY1"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        return cluster, program

    def test_perturbed_run_bypasses_and_is_bitwise_identical(self):
        cluster, program = self._cluster_program()
        full, fast = _run_pair(cluster, program, PerturbationConfig())
        assert not fast.fast_forwarded
        assert fast.total_seconds == full.total_seconds
        assert fast.iteration_ends == full.iteration_ends

    def test_background_load_bypasses(self):
        cluster, program = self._cluster_program()
        pert = DETERMINISTIC.without(background_load=0.2)
        assert not supports_fast_forward(program, pert)
        _, fast = _run_pair(cluster, program, pert)
        assert not fast.fast_forwarded

    def test_observer_bypasses_and_sees_every_iteration(self):
        cluster, program = self._cluster_program()
        trace = TraceCollector()
        emulator = ClusterEmulator(cluster, program, DETERMINISTIC)
        result = emulator.run(block(cluster, program.n_rows), observer=trace)
        assert not result.fast_forwarded
        iterations = {r.iteration for r in trace.records}
        assert iterations == set(range(ITERATIONS))

    def test_instrumented_bypasses(self):
        cluster, program = self._cluster_program()
        assert not supports_fast_forward(
            program, DETERMINISTIC, instrumented=True
        )

    def test_iteration_profile_bypasses(self):
        cluster, program = self._cluster_program()
        profile = np.linspace(1.0, 2.0, ITERATIONS)
        varying = program.with_iteration_profile(profile)
        full, fast = _run_pair(cluster, varying)
        assert not fast.fast_forwarded
        assert fast.total_seconds == full.total_seconds

    def test_short_run_bypasses(self):
        cluster, program = self._cluster_program()
        emulator = ClusterEmulator(cluster, program, DETERMINISTIC)
        policy = emulator.fast_forward_policy
        short = emulator.run(
            block(cluster, program.n_rows),
            iterations=policy.probe_iterations,
        )
        assert not short.fast_forwarded

    def test_non_converging_probe_falls_back(self, monkeypatch):
        cluster, program = self._cluster_program()
        monkeypatch.setattr(
            executor_mod, "steady_deltas", lambda ends, policy: None
        )
        full, fast = _run_pair(cluster, program)
        assert not fast.fast_forwarded
        assert fast.iteration_ends == full.iteration_ends

    def test_explicit_flag_and_process_default(self):
        cluster, program = self._cluster_program()
        emulator = ClusterEmulator(cluster, program, DETERMINISTIC)
        d = block(cluster, program.n_rows)
        assert not emulator.run(d, fast_forward=False).fast_forwarded
        previous = set_fast_forward_default(False)
        try:
            assert not fast_forward_default()
            assert not emulator.run(d).fast_forwarded
            # An explicit True overrides the process default.
            assert emulator.run(d, fast_forward=True).fast_forwarded
        finally:
            set_fast_forward_default(previous)


class TestSteadyDetection:
    """Unit-level checks of the cycle detector itself."""

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FastForwardPolicy(warmup=-1)
        with pytest.raises(ValueError):
            FastForwardPolicy(stable=1)
        assert FastForwardPolicy(warmup=2, stable=4).probe_iterations == 7

    def test_constant_deltas_detected(self):
        policy = FastForwardPolicy(warmup=1, stable=3)
        ends = [[1.0 * (i + 1) for i in range(policy.probe_iterations)]]
        assert steady_deltas(ends, policy) == [1.0]

    def test_warmup_transient_is_forgiven(self):
        policy = FastForwardPolicy(warmup=2, stable=3)
        # Two slow warm-up iterations, then exact steady state.
        ends, t = [], 0.0
        for i in range(policy.probe_iterations):
            t += 5.0 if i < 2 else 2.0
            ends.append(t)
        assert steady_deltas([ends], policy) == [2.0]

    def test_unstable_tail_rejected(self):
        policy = FastForwardPolicy(warmup=1, stable=3)
        ends, t = [], 0.0
        for i in range(policy.probe_iterations):
            t += 1.0 + 0.01 * i  # keeps drifting
            ends.append(t)
        assert steady_deltas([ends], policy) is None

    def test_one_unstable_node_rejects_all(self):
        policy = FastForwardPolicy(warmup=1, stable=3)
        n = policy.probe_iterations
        stable = [1.0 * (i + 1) for i in range(n)]
        drifting = [sum(1.0 + 0.01 * j for j in range(i + 1)) for i in range(n)]
        assert steady_deltas([stable, drifting], policy) is None

    def test_short_probe_rejected(self):
        policy = FastForwardPolicy(warmup=2, stable=4)
        assert steady_deltas([[1.0, 2.0, 3.0]], policy) is None

    def test_zero_delta_node_extrapolates_flat(self):
        # A node with no work per iteration keeps a flat clock.
        assert extrapolate_ends([0.0, 0.0, 0.0], 0.0, 6) == [0.0] * 6

    def test_extrapolate_is_closed_form(self):
        ends = extrapolate_ends([1.0, 2.0], 0.5, 5)
        assert ends == [1.0, 2.0, 2.5, 3.0, 3.5]


class TestEmulateAndRunCache:
    """`emulate()` + the shared content-keyed run cache."""

    def _workload(self):
        cluster = table1_configs()["DC"]
        program = JacobiApp.paper(SCALE).structure.with_iterations(ITERATIONS)
        return cluster, program, block(cluster, program.n_rows)

    def test_hit_returns_equal_result(self):
        cluster, program, d = self._workload()
        cache = RunCache()
        first = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=cache
        )
        second = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=cache
        )
        assert cache.hits == 1 and cache.misses == 1
        assert second.total_seconds == first.total_seconds
        assert second.iteration_ends == first.iteration_ends

    def test_hit_is_a_defensive_copy(self):
        cluster, program, d = self._workload()
        cache = RunCache()
        first = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=cache
        )
        first.iteration_ends[0][0] = -1.0
        first.per_node_seconds[0] = -1.0
        second = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=cache
        )
        assert second.iteration_ends[0][0] != -1.0
        assert second.per_node_seconds[0] != -1.0

    def test_key_separates_iterations_and_perturbation(self):
        cluster, program, d = self._workload()
        base = RunCache.key(cluster, program, d, 10, DETERMINISTIC)
        assert base == RunCache.key(cluster, program, d, 10, DETERMINISTIC)
        assert base != RunCache.key(cluster, program, d, 11, DETERMINISTIC)
        assert base != RunCache.key(
            cluster, program, d, 10, PerturbationConfig()
        )
        assert base != RunCache.key(
            cluster, program, d, 10, DETERMINISTIC, fast_forward=False
        )
        assert base != RunCache.key(
            cluster, program, d, 10, DETERMINISTIC, instrumented=True
        )

    def test_fast_forward_mode_does_not_share_entries(self):
        cluster, program, d = self._workload()
        cache = RunCache()
        fast = emulate(
            cluster, program, d, perturbation=DETERMINISTIC, cache=cache
        )
        full = emulate(
            cluster,
            program,
            d,
            perturbation=DETERMINISTIC,
            cache=cache,
            fast_forward=False,
        )
        assert cache.hits == 0 and cache.misses == 2
        assert fast.fast_forwarded and not full.fast_forwarded
        assert _rel_close(fast.total_seconds, full.total_seconds)

    def test_cache_false_bypasses(self):
        cluster, program, d = self._workload()
        cache = RunCache()
        emulate(cluster, program, d, perturbation=DETERMINISTIC, cache=False)
        assert len(cache) == 0

    def test_observer_bypasses_cache(self):
        cluster, program, d = self._workload()
        cache = RunCache()
        emulate(cluster, program, d, perturbation=DETERMINISTIC, cache=cache)
        trace = TraceCollector()
        emulate(
            cluster,
            program,
            d,
            perturbation=DETERMINISTIC,
            cache=cache,
            observer=trace,
        )
        # The observed run simulated for real: records exist and the
        # cache saw no second lookup.
        assert trace.records
        assert cache.hits == 0

    def test_bounded_lru_discipline(self):
        cache = RunCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("c") == 3
        assert cache.stats["evictions"] == 1
