"""Tests for the terminal chart renderer."""

import pytest

from repro.util.ascii_plot import MARKERS, ascii_plot


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot(["a", "b", "c"], {"s1": [1.0, 2.0, 3.0]})
        assert "o" in out
        assert "s1" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot(
            ["a", "b"], {"one": [1.0, 2.0], "two": [2.0, 1.0]}
        )
        assert MARKERS[0] in out
        assert MARKERS[1] in out

    def test_title_included(self):
        out = ascii_plot(["x"], {"s": [1.0]}, title="The Title")
        assert out.splitlines()[0] == "The Title"

    def test_y_range_labels(self):
        out = ascii_plot(["a", "b"], {"s": [2.0, 10.0]}, y_format=".1f")
        assert "10.0" in out
        assert "2.0" in out

    def test_extremes_hit_top_and_bottom(self):
        out = ascii_plot(["a", "b"], {"s": [0.0, 1.0]}, height=5)
        lines = [l for l in out.splitlines() if "|" in l]
        assert "o" in lines[0]  # max at top row
        assert "o" in lines[-1]  # min at bottom row

    def test_flat_series_no_crash(self):
        out = ascii_plot(["a", "b", "c"], {"s": [5.0, 5.0, 5.0]})
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert sum(row.count("o") for row in plot_rows) == 3

    def test_single_point(self):
        out = ascii_plot(["only"], {"s": [1.0]})
        assert "o" in out
        assert "only" in out

    def test_x_labels_thinned_not_overlapping(self):
        labels = [f"label{i}" for i in range(30)]
        out = ascii_plot(labels, {"s": list(range(30))}, width=40)
        label_line = out.splitlines()[-2]
        assert "label0" in label_line
        # Not every label fits; the renderer must drop some.
        assert sum(1 for i in range(30) if f"label{i}" in label_line) < 30

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            ascii_plot(["a"], {})

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_plot(["a", "b"], {"s": [1.0]})

    def test_no_points_raises(self):
        with pytest.raises(ValueError):
            ascii_plot([], {"s": []})

    def test_height_respected(self):
        out = ascii_plot(["a", "b"], {"s": [1.0, 2.0]}, height=7)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 7

    def test_experiment_charts_render(self):
        from repro.cluster import config_dc
        from repro.experiments import run_spectrum
        from repro.apps import JacobiApp

        run = run_spectrum(
            config_dc(),
            JacobiApp.paper(0.03).structure.with_iterations(2),
            steps_per_leg=1,
        )
        chart = run.chart()
        assert "actual" in chart and "predicted" in chart
