"""Tests for the paper's deferred features, implemented as extensions:
non-uniform iterations (§3.1) and non-dedicated environments (§3.2)."""

import numpy as np
import pytest

from repro.cluster import baseline_cluster, config_hy2
from repro.core import MhetaModel
from repro.distribution import block
from repro.exceptions import ProgramStructureError
from repro.experiments import dedicated_assumption_study
from repro.instrument import collect_inputs
from repro.instrument.collect import MeasurementConfig
from repro.program import ProgramBuilder
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.sim.perturbation import PerturbationModel
from repro.util.units import mib
from tests.conftest import make_jacobi_like

IDEAL = PerturbationConfig.none()
PERFECT = MeasurementConfig.perfect()


class TestIterationProfileStructure:
    def test_profile_attached_and_validated(self):
        program = make_jacobi_like(iterations=3).with_iteration_profile(
            [1.0, 2.0, 0.5]
        )
        assert program.iteration_multiplier(1) == 2.0

    def test_wrong_length_raises(self):
        with pytest.raises(ProgramStructureError):
            make_jacobi_like(iterations=3).with_iteration_profile([1.0, 2.0])

    def test_nonpositive_raises(self):
        with pytest.raises(ProgramStructureError):
            make_jacobi_like(iterations=2).with_iteration_profile([1.0, 0.0])

    def test_uniform_default_multiplier(self):
        program = make_jacobi_like(iterations=3)
        assert program.iteration_multiplier(2) == 1.0

    def test_out_of_range_iteration_raises(self):
        program = make_jacobi_like(iterations=3).with_iteration_profile(
            [1.0, 1.0, 1.0]
        )
        with pytest.raises(ProgramStructureError):
            program.iteration_multiplier(3)

    def test_with_iterations_drops_profile(self):
        program = make_jacobi_like(iterations=3).with_iteration_profile(
            [1.0, 2.0, 0.5]
        )
        assert program.with_iterations(5).iteration_profile is None

    def test_builder_entry_point(self):
        program = (
            ProgramBuilder("p", n_rows=16, iterations=2)
            .distributed("a", cols=1)
            .section("s")
            .stage("st", reads=["a"], work_per_row=1e-6)
            .iteration_profile([1.0, 3.0])
            .build()
        )
        assert program.iteration_multiplier(1) == 3.0


class TestNonUniformIterations:
    def _setup(self, profile):
        program = make_jacobi_like(
            n_rows=1024, cols=1024, iterations=len(profile)
        ).with_iteration_profile(profile)
        cluster = baseline_cluster().with_nodes(
            [n.with_(memory_bytes=mib(2)) for n in baseline_cluster().nodes]
        )
        return cluster, program

    def test_emulator_honours_profile(self):
        cluster, program = self._setup([1.0, 3.0, 1.0])
        res = ClusterEmulator(cluster, program, IDEAL).run(
            block(cluster, program.n_rows)
        )
        durations = res.iteration_durations(0)
        # Iteration 2 (3x compute) is strictly the longest.
        assert durations[1] > durations[0]
        assert durations[1] > durations[2]

    @pytest.mark.parametrize(
        "profile",
        [
            [1.0, 2.0, 0.5, 1.5],
            [3.0, 1.0, 1.0],  # instrumented iteration is the heavy one
            [0.25, 0.25, 4.0],
        ],
    )
    def test_model_exact_under_ideal_conditions(self, profile):
        cluster, program = self._setup(profile)
        d0 = block(cluster, program.n_rows)
        inputs = collect_inputs(
            cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
        )
        model = MhetaModel(program, cluster, inputs)
        actual = ClusterEmulator(cluster, program, IDEAL).run(d0)
        assert model.predict_seconds(d0) == pytest.approx(
            actual.total_seconds, rel=1e-9
        )

    def test_io_does_not_scale_with_profile(self):
        # Doubling compute must not double the run when I/O dominates.
        cluster, heavy = self._setup([2.0, 2.0])
        _, light = self._setup([1.0, 1.0])
        d = block(cluster, heavy.n_rows)
        t_heavy = ClusterEmulator(cluster, heavy, IDEAL).run(d).total_seconds
        t_light = ClusterEmulator(cluster, light, IDEAL).run(d).total_seconds
        assert t_heavy < 2 * t_light


class TestBackgroundLoad:
    def test_dedicated_factor_is_one(self):
        model = PerturbationModel(PerturbationConfig(background_load=0.0))
        assert model.background_factor() == 1.0

    def test_load_slows_compute(self):
        loaded = PerturbationModel(
            PerturbationConfig(background_load=0.3), run_labels=("t",)
        )
        factors = [loaded.background_factor() for _ in range(50)]
        assert np.mean(factors) > 1.2
        assert all(f >= 1.0 for f in factors)

    def test_load_is_bounded(self):
        extreme = PerturbationModel(
            PerturbationConfig(background_load=0.9, background_volatility=3.0),
            run_labels=("t",),
        )
        factors = [extreme.background_factor() for _ in range(200)]
        assert max(factors) <= 10.0 + 1e-9  # load clipped at 0.9

    def test_load_is_persistent(self):
        model = PerturbationModel(
            PerturbationConfig(background_load=0.3), run_labels=("t",)
        )
        series = np.array([model.background_factor() for _ in range(300)])
        # AR(1) persistence: adjacent samples correlate strongly.
        corr = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert corr > 0.5

    def test_emulated_run_slows_under_load(self, base_cluster, jacobi_like):
        d = block(base_cluster, jacobi_like.n_rows)
        dedicated = ClusterEmulator(base_cluster, jacobi_like, IDEAL).run(d)
        loaded = ClusterEmulator(
            base_cluster,
            jacobi_like,
            PerturbationConfig.none().without(),  # keep other effects off
        )
        loaded_cfg = PerturbationConfig.none()
        import dataclasses

        loaded_cfg = dataclasses.replace(loaded_cfg, background_load=0.4)
        loaded = ClusterEmulator(base_cluster, jacobi_like, loaded_cfg).run(d)
        assert loaded.total_seconds > dedicated.total_seconds * 1.2


class TestRobustnessStudy:
    def test_small_scale_study(self):
        result = dedicated_assumption_study(
            scale=0.05, loads=(0.0, 0.3), steps_per_leg=1
        )
        assert result.mean_error[0.3] > result.mean_error[0.0]
        assert "background load" in result.describe()
