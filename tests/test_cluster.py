"""Unit tests for repro.cluster (nodes, network, cluster, configs)."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    architecture_suite,
    baseline_cluster,
    config_dc,
    config_hy1,
    config_hy2,
    config_io,
    prefetch_suite,
    table1_configs,
)
from repro.cluster.configs import N_NODES, baseline_node
from repro.exceptions import ConfigurationError
from repro.util.units import mib


class TestNodeSpec:
    def test_defaults_valid(self):
        node = NodeSpec(name="n")
        assert node.cpu_power == 1.0
        assert node.memory_bytes > 0

    def test_read_seconds_is_seek_plus_transfer(self):
        node = NodeSpec(name="n", disk_read_seek=0.01, disk_read_bw=100e6)
        assert node.read_seconds(100e6) == pytest.approx(1.01)

    def test_write_seconds(self):
        node = NodeSpec(name="n", disk_write_seek=0.02, disk_write_bw=50e6)
        assert node.write_seconds(50e6) == pytest.approx(1.02)

    def test_compute_seconds_scales_with_power(self):
        fast = NodeSpec(name="f", cpu_power=2.0)
        slow = NodeSpec(name="s", cpu_power=0.5)
        assert fast.compute_seconds(1.0) == pytest.approx(0.5)
        assert slow.compute_seconds(1.0) == pytest.approx(2.0)

    def test_scaled_io_slows_everything(self):
        node = NodeSpec(name="n")
        slow = node.scaled_io(2.0)
        assert slow.disk_read_seek == pytest.approx(2 * node.disk_read_seek)
        assert slow.disk_read_bw == pytest.approx(node.disk_read_bw / 2)
        assert slow.disk_write_bw == pytest.approx(node.disk_write_bw / 2)

    def test_scaled_io_speeds_up(self):
        node = NodeSpec(name="n")
        fast = node.scaled_io(0.5)
        assert fast.disk_read_bw == pytest.approx(2 * node.disk_read_bw)

    def test_with_replaces_fields(self):
        node = NodeSpec(name="n").with_(cpu_power=3.0)
        assert node.cpu_power == 3.0
        assert node.name == "n"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cpu_power", 0.0),
            ("cpu_power", -1.0),
            ("memory_bytes", 0),
            ("disk_read_bw", 0.0),
            ("disk_write_bw", -5.0),
            ("disk_read_seek", -1e-3),
            ("os_cache_bytes", -1),
        ],
    )
    def test_invalid_fields_raise(self, field, value):
        with pytest.raises(ConfigurationError):
            NodeSpec(name="n", **{field: value})

    def test_invalid_io_scale_raises(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(name="n").scaled_io(0.0)


class TestNetworkSpec:
    def test_transfer_linear_in_bytes(self):
        net = NetworkSpec(fixed_latency=1e-3, latency_per_byte=1e-6)
        assert net.transfer_seconds(1000) == pytest.approx(2e-3)

    def test_zero_cost_network_allowed(self):
        net = NetworkSpec(0.0, 0.0, 0.0, 0.0)
        assert net.transfer_seconds(1e9) == 0.0

    def test_negative_overhead_raises(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(send_overhead=-1.0)


class TestClusterSpec:
    def test_len_iter_getitem(self, base_cluster):
        assert len(base_cluster) == N_NODES
        assert base_cluster[0].name == "node0"
        assert [n.name for n in base_cluster][-1] == "node7"

    def test_aggregate_views(self, hetero_cluster):
        assert hetero_cluster.cpu_powers.shape == (8,)
        assert hetero_cluster.memory_bytes.dtype == np.int64
        assert hetero_cluster.total_memory_bytes == int(
            hetero_cluster.memory_bytes.sum()
        )

    def test_cpu_homogeneity(self, base_cluster, hetero_cluster):
        assert base_cluster.is_cpu_homogeneous
        assert not hetero_cluster.is_cpu_homogeneous

    def test_memory_pressure_ratio(self, base_cluster):
        total = base_cluster.total_memory_bytes
        assert base_cluster.memory_pressure(total) == pytest.approx(1.0)
        assert base_cluster.memory_pressure(total // 2) == pytest.approx(0.5)

    def test_replace_node(self, base_cluster):
        new = base_cluster.replace_node(3, baseline_node(3).with_(cpu_power=9.0))
        assert new[3].cpu_power == 9.0
        assert base_cluster[3].cpu_power == 1.0  # original untouched

    def test_duplicate_names_raise(self):
        node = NodeSpec(name="same")
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="c", nodes=(node, node))

    def test_empty_cluster_raises(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="c", nodes=())

    def test_describe_mentions_every_node(self, base_cluster):
        text = base_cluster.describe()
        for i in range(N_NODES):
            assert f"node{i}" in text


class TestTable1Configs:
    def test_all_four_present(self):
        configs = table1_configs()
        assert set(configs) == {"DC", "IO", "HY1", "HY2"}
        for c in configs.values():
            assert c.n_nodes == N_NODES

    def test_dc_matches_description(self):
        dc = config_dc()
        powers = sorted(n.cpu_power for n in dc.nodes)
        assert powers[0] < 1.0 and powers[1] < 1.0  # two lower
        assert powers[-1] > 1.0 and powers[-2] > 1.0  # two higher
        assert powers[2:6] == [1.0] * 4  # the rest unchanged
        # Memories ample: I/O is not a concern in DC.
        assert all(n.memory_bytes >= mib(512) for n in dc.nodes)

    def test_io_matches_description(self):
        io = config_io()
        assert io.is_cpu_homogeneous
        small = [n for n in io.nodes if n.memory_bytes <= mib(48)]
        assert len(small) == N_NODES // 2
        base = baseline_node(0)
        for n in small:
            assert n.disk_read_bw < base.disk_read_bw  # high I/O latency

    def test_hy1_matches_description(self):
        hy1 = config_hy1()
        varying = {n.cpu_power for n in hy1.nodes[:4]}
        assert len(varying) == 4  # four distinct powers
        base = baseline_node(0)
        for n in hy1.nodes[4:]:
            assert n.memory_bytes < base.memory_bytes  # small memories
            assert n.disk_read_bw > base.disk_read_bw  # low I/O latency

    def test_hy2_matches_description(self):
        hy2 = config_hy2()
        varying = {n.cpu_power for n in hy2.nodes[:4]}
        assert len(varying) == 4
        base = baseline_node(0)
        slow = [n for n in hy2.nodes if n.disk_read_bw < base.disk_read_bw]
        assert len(slow) == 2  # two high I/O latency
        large = [n for n in hy2.nodes if n.memory_bytes > base.memory_bytes]
        assert len(large) == 2  # two large memories

    def test_os_cache_constant_across_configs(self):
        # The page cache is physical hardware: never varied by emulation.
        caches = {
            n.os_cache_bytes
            for c in table1_configs().values()
            for n in c.nodes
        }
        assert len(caches) == 1


class TestSuites:
    def test_architecture_suite_size_and_names(self):
        suite = architecture_suite()
        assert len(suite) == 17
        names = [c.name for c in suite]
        assert names[:4] == ["DC", "IO", "HY1", "HY2"]
        assert len(set(names)) == 17

    def test_prefetch_suite_size(self):
        suite = prefetch_suite()
        assert len(suite) == 12

    def test_prefetch_suite_has_memory_pressure(self):
        base = baseline_node(0)
        for arch in prefetch_suite():
            assert any(n.memory_bytes < base.memory_bytes for n in arch.nodes)

    def test_suites_deterministic(self):
        a = architecture_suite()
        b = architecture_suite()
        for ca, cb in zip(a, b):
            assert ca == cb

    def test_truncated_suite(self):
        assert len(architecture_suite(2)) == 2
        assert len(prefetch_suite(3)) == 3
