"""Property-based tests (hypothesis) for core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.io_model import prefetch_io_seconds, sync_io_seconds
from repro.core.comm import pipeline_waits
from repro.distribution import GenBlock, interpolate, largest_remainder_round
from repro.placement import plan_memory
from repro.sim.engine import Delay, Engine, Recv, Send
from tests.conftest import make_cg_like, make_jacobi_like

COMMON = settings(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=60
)


# -- largest-remainder rounding ------------------------------------------------

shares_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1,
    max_size=16,
)


class TestRoundingProperties:
    @COMMON
    @given(shares=shares_strategy, total=st.integers(0, 100_000))
    def test_sum_is_exact(self, shares, total):
        out = largest_remainder_round(np.array(shares), total)
        assert int(out.sum()) == total
        assert (out >= 0).all()

    @COMMON
    @given(shares=shares_strategy, total=st.integers(16, 100_000))
    def test_minimum_enforced(self, shares, total):
        out = largest_remainder_round(np.array(shares), total, minimum=1)
        assert int(out.sum()) == total
        assert (out >= 1).all()

    @COMMON
    @given(
        shares=st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
        total=st.integers(100, 10_000),
    )
    def test_within_one_of_exact_proportion(self, shares, total):
        arr = np.array(shares)
        out = largest_remainder_round(arr, total)
        exact = arr / arr.sum() * total
        assert np.abs(out - exact).max() < len(shares) + 1


# -- GenBlock -------------------------------------------------------------------

counts_strategy = st.lists(st.integers(0, 10_000), min_size=1, max_size=16)


class TestGenBlockProperties:
    @COMMON
    @given(counts=counts_strategy)
    def test_row_ranges_partition_rows(self, counts):
        d = GenBlock(counts)
        covered = 0
        prev_stop = 0
        for node in range(d.n_nodes):
            start, stop = d.rows_of(node)
            assert start == prev_stop
            covered += stop - start
            prev_stop = stop
        assert covered == d.n_rows

    @COMMON
    @given(counts=counts_strategy.filter(lambda c: sum(c) > 0))
    def test_owner_matches_ranges(self, counts):
        d = GenBlock(counts)
        for row in {0, d.n_rows // 2, d.n_rows - 1}:
            owner = d.owner_of(row)
            start, stop = d.rows_of(owner)
            assert start <= row < stop

    @COMMON
    @given(
        counts=counts_strategy,
        src=st.integers(0, 15),
        dst=st.integers(0, 15),
        rows=st.integers(0, 100),
    )
    def test_moved_preserves_total(self, counts, src, dst, rows):
        d = GenBlock(counts)
        src %= d.n_nodes
        dst %= d.n_nodes
        rows = min(rows, d[src])
        moved = d.moved(src, dst, rows)
        assert moved.n_rows == d.n_rows


class TestInterpolateProperties:
    @COMMON
    @given(
        a=counts_strategy,
        alpha=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        data=st.data(),
    )
    def test_total_preserved_between_permutations(self, a, alpha, data):
        da = GenBlock(a)
        permuted = data.draw(st.permutations(list(a)))
        db = GenBlock(permuted)
        mid = interpolate(da, db, alpha)
        assert mid.n_rows == da.n_rows
        assert (mid.as_array >= 0).all()

    @COMMON
    @given(a=counts_strategy)
    def test_self_interpolation_identity(self, a):
        d = GenBlock(a)
        assert interpolate(d, d, 0.37) == d


# -- Equations -------------------------------------------------------------------


class TestEquationProperties:
    @COMMON
    @given(
        n_io=st.integers(1, 50),
        rs=st.floats(0, 0.1, allow_nan=False),
        read=st.floats(0, 10, allow_nan=False),
        overlap=st.floats(0, 10, allow_nan=False),
    )
    def test_prefetch_bounded_by_sync(self, n_io, rs, read, overlap):
        """Prefetch I/O minus its overlap charge never exceeds
        synchronous I/O, and masking is capped by the first-read floor."""
        sync = sync_io_seconds(n_io, rs, read)
        prefetch = prefetch_io_seconds(n_io, rs, read, overlap)
        # Removing the charged overlap gives pure I/O-wait <= sync.
        assert prefetch - n_io * overlap <= sync + 1e-9
        # The first read always pays full latency.
        assert prefetch >= rs * n_io + read - 1e-12

    @COMMON
    @given(
        n_io=st.integers(1, 50),
        rs=st.floats(0, 0.1, allow_nan=False),
        read=st.floats(0, 10, allow_nan=False),
    )
    def test_zero_overlap_equals_equation_1(self, n_io, rs, read):
        assert prefetch_io_seconds(n_io, rs, read, 0.0) == pytest.approx(
            sync_io_seconds(n_io, rs, read)
        )

    @COMMON
    @given(
        tiles=st.lists(st.floats(0.01, 5.0, allow_nan=False), min_size=1, max_size=12),
        overheads=st.tuples(
            st.floats(0, 0.01, allow_nan=False),
            st.floats(0, 0.01, allow_nan=False),
        ),
        transfer=st.floats(0, 0.1, allow_nan=False),
    )
    def test_pipeline_waits_nonnegative(self, tiles, overheads, transfer):
        os_, or_ = overheads
        waits = pipeline_waits(tiles, tiles, os_, or_, transfer)
        assert all(w >= 0 for w in waits)
        # First tile always waits at least the sender's first tile time.
        assert waits[0] >= tiles[0]


# -- Placement -------------------------------------------------------------------


class TestPlacementProperties:
    @COMMON
    @given(
        rows=st.integers(0, 5000),
        memory_mib=st.integers(1, 256),
    )
    def test_plan_invariants_single_variable(self, rows, memory_mib):
        program = make_jacobi_like(n_rows=max(rows, 1), cols=256)
        plan = plan_memory(program, rows, memory_mib * 2**20)
        for placement in plan.placements.values():
            assert placement.block_rows >= 1
            assert placement.n_io >= 1
            if placement.in_core:
                assert placement.ocla_bytes == 0.0
            else:
                # Blocks cover the local array exactly.
                assert placement.n_io == -(
                    -placement.local_rows // placement.block_rows
                )

    @COMMON
    @given(
        rows=st.integers(1, 5000),
        memory_mib=st.integers(1, 64),
    )
    def test_resident_never_exceeds_memory_much(self, rows, memory_mib):
        """Resident set stays within memory plus one block of slack
        (rounding a block to at least one row can overshoot)."""
        program = make_cg_like(n_rows=max(rows, 1))
        memory = memory_mib * 2**20
        plan = plan_memory(program, rows, memory)
        slack = sum(
            max(program.variable(p.name).row_bytes, 0)
            for p in plan.placements.values()
        )
        in_core_total = sum(
            p.local_bytes for p in plan.placements.values() if p.in_core
        )
        available = max(memory - program.replicated_bytes, 0)
        if in_core_total <= available:
            assert plan.resident_bytes <= available + slack + 1

    @COMMON
    @given(rows=st.integers(2, 5000))
    def test_forced_ooc_streams_everything(self, rows):
        program = make_jacobi_like(n_rows=rows, cols=64)
        plan = plan_memory(
            program, rows, 2**30, forced_out_of_core=True
        )
        placement = plan["grid"]
        assert not placement.in_core
        assert placement.n_io >= 2


# -- Engine determinism -----------------------------------------------------------


class TestEngineProperties:
    @COMMON
    @given(
        delays=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=10
        ),
        transfer=st.floats(0.0, 0.5, allow_nan=False),
    )
    def test_ping_pong_total_time(self, delays, transfer):
        """A strictly alternating ping-pong's end time equals the sum of
        all delays plus per-hop transfers, independent of scheduling."""

        def left():
            for i, d in enumerate(delays):
                yield Delay(d)
                yield Send(1, f"m{i}", transfer=transfer)
                yield Recv(1, f"r{i}")

        def right():
            for i, d in enumerate(delays):
                yield Recv(0, f"m{i}")
                yield Delay(d)
                yield Send(0, f"r{i}", transfer=transfer)

        engine = Engine()
        engine.add_process(left(), 0)
        engine.add_process(right(), 1)
        total = engine.run()
        expected = 2 * sum(delays) + 2 * len(delays) * transfer
        assert total == pytest.approx(expected)
