"""Unit tests for the MHETA core: oracle, equations, timelines, model."""

import pytest

from repro.core import MhetaModel, equations
from repro.core.comm import SectionTimeline, nearest_neighbor_wait, pipeline_waits
from repro.core.io_model import prefetch_io_seconds, sync_io_seconds
from repro.core.oracle import OutOfCoreOracle
from repro.distribution import GenBlock, block, balanced
from repro.exceptions import ModelError
from repro.instrument import collect_inputs, run_microbenchmarks
from repro.instrument.collect import MeasurementConfig
from repro.program.sections import CommPattern
from repro.sim import ClusterEmulator, PerturbationConfig
from repro.util.units import mib
from tests.conftest import make_cg_like, make_jacobi_like, make_pipeline_like

IDEAL = PerturbationConfig.none()
PERFECT = MeasurementConfig.perfect()


def ideal_model(cluster, program):
    d0 = block(cluster, program.n_rows)
    inputs = collect_inputs(
        cluster, program, d0, perturbation=IDEAL, measurement=PERFECT
    )
    return MhetaModel(program, cluster, inputs)


class TestEquation1:
    def test_basic_form(self):
        # 3 passes of (seek 0.01 + read 0.5 + wseek 0.02 + write 1.0)
        assert sync_io_seconds(3, 0.01, 0.5, 0.02, 1.0) == pytest.approx(4.59)

    def test_in_core_is_zero(self):
        assert sync_io_seconds(0, 0.01, 0.5) == 0.0

    def test_read_only_drops_write_terms(self):
        assert sync_io_seconds(2, 0.01, 0.5) == pytest.approx(1.02)

    def test_negative_nio_raises(self):
        with pytest.raises(ModelError):
            sync_io_seconds(-1, 0.01, 0.5)

    def test_equations_module_alias(self):
        assert equations.equation_1(2, 0.01, 0.5) == sync_io_seconds(
            2, 0.01, 0.5
        )


class TestEquation2:
    def test_reduces_to_equation_1_without_overlap(self):
        for n_io in (1, 2, 5):
            assert prefetch_io_seconds(
                n_io, 0.01, 0.5, overlap_seconds=0.0, write_seek=0.02,
                write_icla_seconds=0.3,
            ) == pytest.approx(
                sync_io_seconds(n_io, 0.01, 0.5, 0.02, 0.3)
            )

    def test_full_overlap_masks_latency(self):
        # To >= R: effective latency zero; only first read pays R.
        total = prefetch_io_seconds(4, 0.01, 0.5, overlap_seconds=0.9)
        expected = 4 * (0.01 + 0.9) + 0.5
        assert total == pytest.approx(expected)

    def test_partial_overlap(self):
        total = prefetch_io_seconds(2, 0.0, 1.0, overlap_seconds=0.4)
        # N*(To) + R + (N-1)*(R - To) = 0.8 + 1.0 + 0.6
        assert total == pytest.approx(2.4)

    def test_overlap_charged_even_when_useless(self):
        # Prefetching can be more expensive than synchronous reads.
        sync = sync_io_seconds(4, 0.01, 0.001)
        prefetch = prefetch_io_seconds(4, 0.01, 0.001, overlap_seconds=0.5)
        assert prefetch > sync

    def test_zero_passes(self):
        assert prefetch_io_seconds(0, 0.01, 0.5, 0.2) == 0.0


class TestEquation3:
    def test_no_wait_when_message_early(self):
        assert nearest_neighbor_wait(10.0, 1.0, 0.5) == 0.0

    def test_wait_when_message_late(self):
        assert nearest_neighbor_wait(1.0, 10.0, 0.5) == pytest.approx(9.5)

    def test_symmetry_of_equation(self):
        # Equation 3 is symmetric in the two nodes' roles.
        w01 = equations.equation_3(5.0, 0.1, 7.0, 0.1, 0.2)
        w10 = equations.equation_3(7.0, 0.1, 5.0, 0.1, 0.2)
        assert w01 == pytest.approx(2.2)
        assert w10 == 0.0

    def test_equation_5_composition(self):
        assert equations.equation_5(0.1, 2.0, 0.2) == pytest.approx(2.3)


class TestEquation4:
    def test_fast_sender_never_blocks_receiver(self):
        waits = pipeline_waits([0.1] * 4, [1.0] * 4, 0.01, 0.01, 0.05)
        # After the first tile's fill, the sender is always ahead.
        assert waits[0] > 0
        assert all(w == 0.0 for w in waits[1:])

    def test_slow_sender_blocks_every_tile(self):
        waits = pipeline_waits([1.0] * 4, [0.1] * 4, 0.01, 0.01, 0.05)
        assert all(w > 0 for w in waits)

    def test_mismatched_tiles_raise(self):
        with pytest.raises(ModelError):
            pipeline_waits([1.0], [1.0, 2.0], 0.0, 0.0, 0.0)

    def test_waits_match_timeline_two_nodes(self, two_node_cluster):
        micro = run_microbenchmarks(two_node_cluster)
        timeline = SectionTimeline(micro, 2)
        sender = [0.3, 0.2, 0.4]
        receiver = [0.1, 0.5, 0.2]
        ends = timeline.advance(
            CommPattern.PIPELINE,
            [0.0, 0.0],
            [sender, receiver],
            1000.0,
            [0.0, 0.0],
        )
        waits = pipeline_waits(
            sender,
            receiver,
            micro.send_overhead,
            micro.recv_overhead,
            micro.transfer_seconds(1000.0),
        )
        expected_end = sum(waits) + 3 * micro.recv_overhead + sum(receiver)
        assert ends[1] == pytest.approx(expected_end)


class TestSectionTimeline:
    @pytest.fixture
    def timeline(self, base_cluster):
        micro = run_microbenchmarks(base_cluster)
        return SectionTimeline(micro, base_cluster.n_nodes), micro

    def test_none_pattern_adds_stage_times(self, timeline):
        tl, _ = timeline
        ends = tl.advance(
            CommPattern.NONE, [1.0] * 8, [[2.0]] * 8, 0.0, [0.0] * 8
        )
        assert ends == [3.0] * 8

    def test_reduction_synchronises(self, timeline):
        tl, _ = timeline
        starts = [float(i) for i in range(8)]
        ends = tl.advance(
            CommPattern.REDUCTION, starts, [[1.0]] * 8, 8.0, [0.0] * 8
        )
        # Everyone ends within one broadcast depth, after the slowest.
        assert max(ends) - min(ends) < 1e-3
        assert min(ends) > max(starts) + 1.0

    def test_nearest_neighbor_wait_appears(self, timeline):
        tl, micro = timeline
        stage_times = [[10.0]] + [[1.0]] * 7
        ends = tl.advance(
            CommPattern.NEAREST_NEIGHBOR,
            [0.0] * 8,
            stage_times,
            100.0,
            [0.0] * 8,
        )
        # Node 1 must wait for node 0's late message.
        assert ends[1] > 10.0

    def test_source_read_delays_message(self, timeline):
        tl, _ = timeline
        no_read = tl.advance(
            CommPattern.NEAREST_NEIGHBOR,
            [0.0] * 8,
            [[1.0]] * 8,
            100.0,
            [0.0] * 8,
        )
        with_read = tl.advance(
            CommPattern.NEAREST_NEIGHBOR,
            [0.0] * 8,
            [[1.0]] * 8,
            100.0,
            [0.5] * 8,
        )
        assert all(w > n for w, n in zip(with_read, no_read))

    def test_allgather_scales_with_bytes(self, timeline):
        tl, _ = timeline
        small = tl.advance(
            CommPattern.ALLGATHER, [0.0] * 8, [[1.0]] * 8, 100.0, [0.0] * 8
        )
        large = tl.advance(
            CommPattern.ALLGATHER, [0.0] * 8, [[1.0]] * 8, 1e6, [0.0] * 8
        )
        assert all(lg > sm for lg, sm in zip(large, small))

    def test_single_node_shortcut(self, base_cluster):
        micro = run_microbenchmarks(base_cluster)
        tl = SectionTimeline(micro, 1)
        ends = tl.advance(
            CommPattern.REDUCTION, [1.0], [[2.0]], 8.0, [0.0]
        )
        assert ends == [3.0]

    def test_wrong_length_raises(self, timeline):
        tl, _ = timeline
        with pytest.raises(ModelError):
            tl.advance(CommPattern.NONE, [0.0], [[1.0]] * 8, 0.0, [0.0] * 8)


class TestOracle:
    def test_plan_caching(self, base_cluster, jacobi_like):
        oracle = OutOfCoreOracle(
            jacobi_like, [n.memory_bytes for n in base_cluster.nodes]
        )
        a = oracle.plan(0, 100)
        b = oracle.plan(0, 100)
        assert a is b

    def test_is_out_of_core(self, base_cluster, jacobi_like):
        oracle = OutOfCoreOracle(jacobi_like, [mib(1)] * 8)
        assert oracle.is_out_of_core(0, jacobi_like.n_rows, "grid")
        assert not oracle.is_out_of_core(0, 8, "grid")

    def test_unknown_variable_raises(self, base_cluster, jacobi_like):
        oracle = OutOfCoreOracle(jacobi_like, [mib(1)] * 8)
        with pytest.raises(ModelError):
            oracle.is_out_of_core(0, 10, "nope")

    def test_bad_node_raises(self, jacobi_like):
        oracle = OutOfCoreOracle(jacobi_like, [mib(1)])
        with pytest.raises(ModelError):
            oracle.plan(5, 10)


class TestMhetaModelExactness:
    """With every perturbation off and perfect timers, MHETA must agree
    with the emulator to float precision — the equations are exact
    mirrors of the runtime."""

    def check(self, cluster, program, distributions):
        emulator = ClusterEmulator(cluster, program, IDEAL)
        model = ideal_model(cluster, program)
        for d in distributions:
            actual = emulator.run(d).total_seconds
            predicted = model.predict_seconds(d)
            assert predicted == pytest.approx(actual, rel=1e-9), d

    def test_jacobi_in_core(self, base_cluster, jacobi_like):
        self.check(
            base_cluster,
            jacobi_like,
            [block(base_cluster, jacobi_like.n_rows)],
        )

    def test_jacobi_out_of_core(self, base_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=3)
        cluster = base_cluster.with_nodes(
            [n.with_(memory_bytes=mib(2)) for n in base_cluster.nodes]
        )
        self.check(
            cluster,
            program,
            [
                block(cluster, program.n_rows),
                GenBlock([512, 256, 256, 256, 256, 256, 128, 128]),
            ],
        )

    def test_jacobi_heterogeneous(self, hetero_cluster):
        program = make_jacobi_like(n_rows=2048, cols=2048, iterations=3)
        self.check(
            hetero_cluster,
            program,
            [
                block(hetero_cluster, program.n_rows),
                balanced(hetero_cluster, program.n_rows),
            ],
        )

    def test_pipeline_program(self, hetero_cluster, pipeline_like):
        self.check(
            hetero_cluster,
            pipeline_like,
            [block(hetero_cluster, pipeline_like.n_rows)],
        )

    def test_cg_program(self, hetero_cluster, cg_like):
        self.check(
            hetero_cluster,
            cg_like,
            [
                block(hetero_cluster, cg_like.n_rows),
                balanced(hetero_cluster, cg_like.n_rows),
            ],
        )

    def test_prefetch_program(self, base_cluster):
        program = make_jacobi_like(
            n_rows=2048, cols=2048, iterations=3
        ).with_prefetch()
        cluster = base_cluster.with_nodes(
            [n.with_(memory_bytes=mib(2)) for n in base_cluster.nodes]
        )
        self.check(cluster, program, [block(cluster, program.n_rows)])


class TestMhetaModelApi:
    def test_predict_report_fields(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        report = model.predict(block(base_cluster, jacobi_like.n_rows), report=True)
        assert report.total_seconds > 0
        assert report.iterations == jacobi_like.iterations
        assert len(report.nodes) == 8
        assert 0 <= report.bottleneck_node < 8

    def test_report_totals_consistent(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        d = block(base_cluster, jacobi_like.n_rows)
        report = model.predict(d, report=True)
        assert report.total_seconds == pytest.approx(model.predict(d))

    def test_report_breakdown_sums_to_iteration(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        report = model.predict(block(base_cluster, jacobi_like.n_rows), report=True)
        for node in report.nodes:
            parts = sum(s.total for s in node.sections)
            assert parts == pytest.approx(node.iteration_seconds, rel=1e-6)

    def test_describe_renders(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        report = model.predict(block(base_cluster, jacobi_like.n_rows), report=True)
        text = report.describe()
        assert "bottleneck" in text
        assert "node" in text

    def test_component_totals(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        totals = model.predict(
            block(base_cluster, jacobi_like.n_rows), report=True
        ).component_totals()
        assert set(totals) == {"compute", "io", "comm"}
        assert totals["compute"] > 0

    def test_iterations_override(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        d = block(base_cluster, jacobi_like.n_rows)
        t1 = model.predict_seconds(d, iterations=1)
        t10 = model.predict_seconds(d, iterations=10)
        assert t10 > 5 * t1

    def test_wrong_distribution_raises(self, base_cluster, jacobi_like):
        model = ideal_model(base_cluster, jacobi_like)
        with pytest.raises(ModelError):
            model.predict_seconds(GenBlock([jacobi_like.n_rows]))
        with pytest.raises(ModelError):
            model.predict_seconds(block(base_cluster, jacobi_like.n_rows + 8))

    def test_mismatched_program_raises(self, base_cluster, jacobi_like, cg_like):
        d0 = block(base_cluster, jacobi_like.n_rows)
        inputs = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL
        )
        with pytest.raises(ModelError):
            MhetaModel(cg_like, base_cluster, inputs)

    def test_memory_list_constructor(self, base_cluster, jacobi_like):
        d0 = block(base_cluster, jacobi_like.n_rows)
        inputs = collect_inputs(
            base_cluster, jacobi_like, d0, perturbation=IDEAL
        )
        model = MhetaModel(
            jacobi_like,
            [n.memory_bytes for n in base_cluster.nodes],
            inputs,
        )
        assert model.n_nodes == 8
