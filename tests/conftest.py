"""Shared fixtures: small clusters and programs that run in milliseconds."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec, NetworkSpec, baseline_cluster
from repro.program import ProgramBuilder
from repro.util.units import mib


@pytest.fixture
def base_cluster() -> ClusterSpec:
    """Eight homogeneous baseline nodes."""
    return baseline_cluster()


@pytest.fixture
def hetero_cluster() -> ClusterSpec:
    """Eight nodes varying on all three axes (CPU, memory, disk)."""
    base = baseline_cluster()
    powers = [1.0, 0.5, 2.0, 1.0, 1.5, 1.0, 0.75, 1.0]
    memories = [96, 8, 96, 16, 96, 12, 96, 96]  # MiB
    nodes = []
    for i, node in enumerate(base.nodes):
        node = node.with_(cpu_power=powers[i], memory_bytes=mib(memories[i]))
        if i in (1, 3):
            node = node.scaled_io(2.0)
        if i == 5:
            node = node.scaled_io(0.5)
        nodes.append(node)
    return base.with_nodes(nodes, name="hetero-test")


@pytest.fixture
def two_node_cluster() -> ClusterSpec:
    """Two nodes — the paper's equations are stated for this case."""
    return baseline_cluster(name="pair", n_nodes=2)


def make_jacobi_like(n_rows: int = 512, cols: int = 512, iterations: int = 3):
    """A miniature Jacobi-shaped program (RW grid + NN + reduction)."""
    return (
        ProgramBuilder("mini-jacobi", n_rows=n_rows, iterations=iterations)
        .distributed("grid", cols=cols, access="read-write")
        .section("sweep")
        .stage(
            "update",
            reads=["grid"],
            writes=["grid"],
            work_per_row=cols * 50e-9,
        )
        .nearest_neighbor(message_bytes=cols * 8, source_variable="grid")
        .section("residual")
        .stage("norm", reads=["grid"], work_per_row=20e-9)
        .reduction(message_bytes=8)
        .build()
    )


def make_pipeline_like(
    n_rows: int = 512, cols: int = 256, tiles: int = 4, iterations: int = 2
):
    """A miniature RNA-shaped pipelined program."""
    return (
        ProgramBuilder("mini-rna", n_rows=n_rows, iterations=iterations)
        .distributed("dp", cols=cols, access="read-write")
        .section("wave", tiles=tiles)
        .stage(
            "fill", reads=["dp"], writes=["dp"], work_per_row=cols * 40e-9
        )
        .pipeline(message_bytes=cols * 8 / tiles, source_variable="dp")
        .build()
    )


def make_cg_like(n_rows: int = 1024, nnz: int = 16, iterations: int = 3):
    """A miniature CG-shaped program (read-only matrix + collectives)."""
    return (
        ProgramBuilder("mini-cg", n_rows=n_rows, iterations=iterations)
        .distributed("A", cols=nnz, access="read-only", element_size=12)
        .distributed("q", cols=1, access="read-write")
        .replicated("p_full", elements=n_rows)
        .section("matvec")
        .stage(
            "Ap", reads=["A", "p_full"], writes=["q"], work_per_row=nnz * 60e-9
        )
        .allgather(message_bytes=n_rows)
        .section("dots")
        .stage("rho", reads=["q"], work_per_row=10e-9)
        .reduction(message_bytes=16)
        .build()
    )


@pytest.fixture
def jacobi_like():
    return make_jacobi_like()


@pytest.fixture
def pipeline_like():
    return make_pipeline_like()


@pytest.fixture
def cg_like():
    return make_cg_like()


@pytest.fixture
def fast_network_cluster() -> ClusterSpec:
    """Two nodes with zeroed network costs (isolates computation/I/O)."""
    base = baseline_cluster(name="zero-net", n_nodes=2)
    return ClusterSpec(
        name=base.name,
        nodes=base.nodes,
        network=NetworkSpec(
            send_overhead=0.0,
            recv_overhead=0.0,
            latency_per_byte=0.0,
            fixed_latency=0.0,
        ),
    )
